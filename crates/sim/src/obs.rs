//! Protocol observability: metrics registries and structured event traces.
//!
//! Every figure in the paper is a claim about *where time goes* inside a
//! protocol — how many slots committed on the fast path versus through gap
//! agreement, how large confirm batches grew, how deep the aom reorder
//! buffer ran. [`crate::stats::NetStats`] counts only fabric-level traffic;
//! this module gives protocol code a per-node registry of monotonic
//! counters, gauges, and streaming histograms, plus a structured
//! [`Event`] trace, reachable from any handler through
//! [`crate::Context::metrics`] and [`crate::Context::emit`].
//!
//! ## Zero cost when disabled
//!
//! A registry built from [`ObsConfig::disabled`] short-circuits every
//! operation before touching its lock, and the default
//! [`crate::Context::metrics`] implementation returns a process-wide
//! disabled registry — so `Context` implementations that predate this
//! module (test probes, the switch models) compile unchanged and pay
//! nothing.
//!
//! ## Registry sharing
//!
//! All mutation goes through `&self` (a mutex guards the interior), so an
//! executor can hand the same registry to its event loop and to whoever is
//! reading snapshots — the simulator keeps one `Arc<Metrics>` per node
//! slot, the tokio runtime one per node thread. Snapshots are plain
//! serde-serializable values; [`MetricsSnapshot::merge`] folds the
//! per-node views into cluster aggregates for bench reports.

use crate::time::Time;
use neo_wire::Addr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Per-node observability configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record counters, gauges, histograms, and event counts.
    pub metrics: bool,
    /// Keep up to this many [`EventRecord`]s per node; 0 disables the
    /// trace (event *counts* are still kept). Records past the cap are
    /// dropped and tallied in [`MetricsSnapshot::trace_dropped`].
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            metrics: true,
            trace_capacity: 0,
        }
    }
}

impl ObsConfig {
    /// Everything off: every registry operation is a no-op.
    pub fn disabled() -> Self {
        ObsConfig {
            metrics: false,
            trace_capacity: 0,
        }
    }

    /// Enable the bounded event trace with the given capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// A structured protocol event. Variants carry only the identifiers needed
/// to correlate a trace with a log slot or view — payloads stay out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A client request reached the node's protocol layer.
    RequestReceived,
    /// A slot was executed speculatively, ahead of the stable sync point.
    SpeculativeExecute { slot: u64 },
    /// An operation was executed and its reply issued (fast-path commit
    /// for NeoBFT, quorum commit for the baselines).
    Commit { slot: u64 },
    /// Gap agreement started for a missing slot.
    GapFind { slot: u64 },
    /// Gap agreement decided a slot (`noop` = the slot was voided).
    GapCommit { slot: u64, noop: bool },
    /// The node moved to a new view.
    ViewChange { view: u64 },
    /// The node installed a new sequencing epoch.
    EpochChange { epoch: u64 },
    /// A batch of aom confirms was flushed to the group.
    ConfirmBatch { size: u32 },
    /// The aom layer declared a sequence number dropped.
    DropNotification { seq: u64 },
}

/// Discriminant-only view of [`Event`], used to index the per-kind counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    RequestReceived,
    SpeculativeExecute,
    Commit,
    GapFind,
    GapCommit,
    ViewChange,
    EpochChange,
    ConfirmBatch,
    DropNotification,
}

/// Number of [`EventKind`] variants.
pub const EVENT_KIND_COUNT: usize = 9;

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; EVENT_KIND_COUNT] = [
        EventKind::RequestReceived,
        EventKind::SpeculativeExecute,
        EventKind::Commit,
        EventKind::GapFind,
        EventKind::GapCommit,
        EventKind::ViewChange,
        EventKind::EpochChange,
        EventKind::ConfirmBatch,
        EventKind::DropNotification,
    ];

    /// Stable snake_case name used as the key in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RequestReceived => "request_received",
            EventKind::SpeculativeExecute => "speculative_execute",
            EventKind::Commit => "commit",
            EventKind::GapFind => "gap_find",
            EventKind::GapCommit => "gap_commit",
            EventKind::ViewChange => "view_change",
            EventKind::EpochChange => "epoch_change",
            EventKind::ConfirmBatch => "confirm_batch",
            EventKind::DropNotification => "drop_notification",
        }
    }
}

impl Event {
    /// The kind discriminant of this event.
    pub fn kind(self) -> EventKind {
        match self {
            Event::RequestReceived => EventKind::RequestReceived,
            Event::SpeculativeExecute { .. } => EventKind::SpeculativeExecute,
            Event::Commit { .. } => EventKind::Commit,
            Event::GapFind { .. } => EventKind::GapFind,
            Event::GapCommit { .. } => EventKind::GapCommit,
            Event::ViewChange { .. } => EventKind::ViewChange,
            Event::EpochChange { .. } => EventKind::EpochChange,
            Event::ConfirmBatch { .. } => EventKind::ConfirmBatch,
            Event::DropNotification { .. } => EventKind::DropNotification,
        }
    }
}

/// One entry of the bounded per-node event trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Virtual (or wall) time the event was emitted, nanoseconds.
    pub at: Time,
    /// The emitting node.
    pub node: Addr,
    /// The event itself.
    pub event: Event,
}

// Histogram bucket layout: exact buckets for values < 64, then 32
// logarithmically-spaced sub-buckets per power of two (relative error
// bounded by 1/32 ≈ 3%). Covers the full u64 range in 1920 buckets.
const LINEAR_BUCKETS: usize = 64;
const SUB_BUCKETS: u64 = 32;
const N_BUCKETS: usize = LINEAR_BUCKETS + (64 - 6) * SUB_BUCKETS as usize;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let e = 63 - u64::from(v.leading_zeros());
    let sub = (v >> (e - 5)) & (SUB_BUCKETS - 1);
    (64 + (e - 6) * SUB_BUCKETS + sub) as usize
}

/// Lower bound of the values mapped to bucket `i` (the value reported for
/// quantiles landing in that bucket).
pub fn bucket_floor(i: u32) -> u64 {
    let i = u64::from(i);
    if i < LINEAR_BUCKETS as u64 {
        return i;
    }
    let e = 6 + (i - 64) / SUB_BUCKETS;
    let sub = (i - 64) % SUB_BUCKETS;
    (1u64 << e) + (sub << (e - 5))
}

/// A streaming histogram with bounded relative error (~3% above 64).
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; N_BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The value at quantile `q` in `[0, 1]` (lower bound of its bucket;
    /// 0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return bucket_floor(i as u32);
            }
        }
        self.max
    }

    /// Freeze into a serializable, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (i as u32, *c))
                .collect(),
        }
    }
}

/// Serializable summary of one [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// Sparse `(bucket index, count)` pairs — enough to merge snapshots
    /// across nodes without losing quantile accuracy.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 if empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Fold `other` into `self`, recomputing the quantiles from the merged
    /// sparse buckets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for (i, c) in &other.buckets {
            *merged.entry(*i).or_default() += c;
        }
        self.buckets = merged.into_iter().collect();
        self.p50 = quantile_from_buckets(&self.buckets, self.count, 0.50);
        self.p90 = quantile_from_buckets(&self.buckets, self.count, 0.90);
        self.p99 = quantile_from_buckets(&self.buckets, self.count, 0.99);
    }
}

fn quantile_from_buckets(buckets: &[(u32, u64)], count: u64, q: f64) -> u64 {
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut acc = 0u64;
    for (i, c) in buckets {
        acc += c;
        if acc >= target {
            return bucket_floor(*i);
        }
    }
    buckets.last().map(|(i, _)| bucket_floor(*i)).unwrap_or(0)
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    events: [u64; EVENT_KIND_COUNT],
    trace: Vec<EventRecord>,
    trace_dropped: u64,
}

/// A per-node metrics registry.
///
/// All operations take `&self` (the interior is mutex-guarded) so one
/// registry can be shared between an executor's event loop and snapshot
/// readers via `Arc`. Every operation checks the enabled flag before
/// touching the lock, so a disabled registry costs one branch.
pub struct Metrics {
    enabled: bool,
    trace_capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new(ObsConfig::default())
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.enabled)
            .field("trace_capacity", &self.trace_capacity)
            .finish_non_exhaustive()
    }
}

impl Metrics {
    /// Build a registry from `cfg`.
    pub fn new(cfg: ObsConfig) -> Self {
        Metrics {
            enabled: cfg.metrics,
            trace_capacity: cfg.trace_capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The process-wide disabled registry, used by the default
    /// [`crate::Context::metrics`] implementation.
    pub fn disabled() -> &'static Metrics {
        static DISABLED: OnceLock<Metrics> = OnceLock::new();
        DISABLED.get_or_init(|| Metrics::new(ObsConfig::disabled()))
    }

    /// Whether this registry records anything. Instrumentation that does
    /// non-trivial work to *compute* a metric should guard on this.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Increment the monotonic counter `name` by 1.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment the monotonic counter `name` by `v`.
    pub fn add(&self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        if let Some(c) = inner.counters.get_mut(name) {
            *c += v;
        } else {
            inner.counters.insert(name.to_string(), v);
        }
    }

    /// Set the gauge `name` to `v` (a point-in-time level, e.g. a buffer
    /// depth).
    pub fn set_gauge(&self, name: &str, v: i64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        if let Some(g) = inner.gauges.get_mut(name) {
            *g = v;
        } else {
            inner.gauges.insert(name.to_string(), v);
        }
    }

    /// Record `v` into the streaming histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            inner.histograms.insert(name.to_string(), h);
        }
    }

    /// Count `ev` and, when tracing is enabled, append a record. Called by
    /// the default [`crate::Context::emit`].
    pub fn record_event(&self, at: Time, node: Addr, ev: Event) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        inner.events[event_slot(ev.kind())] += 1;
        if self.trace_capacity > 0 {
            if inner.trace.len() < self.trace_capacity {
                inner.trace.push(EventRecord {
                    at,
                    node,
                    event: ev,
                });
            } else {
                inner.trace_dropped += 1;
            }
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Number of events of `kind` recorded so far.
    pub fn event_count(&self, kind: EventKind) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.lock().events[event_slot(kind)]
    }

    /// Drain the bounded event trace, leaving it empty.
    pub fn take_trace(&self) -> Vec<EventRecord> {
        if !self.enabled {
            return Vec::new();
        }
        std::mem::take(&mut self.lock().trace)
    }

    /// Freeze the registry into a serializable snapshot. Disabled
    /// registries snapshot to the empty default.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if !self.enabled {
            return MetricsSnapshot::default();
        }
        let inner = self.lock();
        let mut events = BTreeMap::new();
        for kind in EventKind::ALL {
            let n = inner.events[event_slot(kind)];
            if n > 0 {
                events.insert(kind.name().to_string(), n);
            }
        }
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            events,
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            trace_dropped: inner.trace_dropped,
        }
    }
}

fn event_slot(kind: EventKind) -> usize {
    EventKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind listed in ALL")
}

/// Serializable point-in-time view of one registry (or, after
/// [`merge`](MetricsSnapshot::merge), of many).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters. Summed on merge.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (levels). Summed on merge, so a merged gauge reads as a
    /// cluster-wide total (e.g. total buffered envelopes).
    pub gauges: BTreeMap<String, i64>,
    /// Per-kind event counts, keyed by [`EventKind::name`]. Only nonzero
    /// kinds appear. Summed on merge.
    pub events: BTreeMap<String, u64>,
    /// Histograms, merged bucket-wise.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Trace records dropped because the per-node capacity was reached.
    #[serde(default)]
    pub trace_dropped: u64,
}

impl MetricsSnapshot {
    /// Count of events of `kind` (0 if absent).
    pub fn event(&self, kind: EventKind) -> u64 {
        self.events.get(kind.name()).copied().unwrap_or(0)
    }

    /// Fold `other` into `self`: counters/gauges/events sum, histograms
    /// merge bucket-wise with quantiles recomputed.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.events {
            *self.events.entry(k.clone()).or_default() += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        self.trace_dropped += other.trace_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::ReplicaId;

    #[test]
    fn bucket_mapping_roundtrips() {
        for v in [0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            let floor = bucket_floor(i as u32);
            assert!(floor <= v, "floor {floor} > value {v}");
            // Relative error is bounded by one sub-bucket width.
            if v >= 64 {
                assert!(v - floor <= v / 32, "bucket too wide at {v}");
            } else {
                assert_eq!(floor, v);
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!((480..=500).contains(&p50), "p50 = {p50}");
        assert!((870..=900).contains(&p90), "p90 = {p90}");
        assert!((955..=990).contains(&p99), "p99 = {p99}");
        let snap = h.snapshot();
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.mean(), 500);
    }

    #[test]
    fn small_histograms_are_exact() {
        let mut h = Histogram::default();
        for v in [3u64, 5, 5, 7] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn counters_merge_across_nodes() {
        let a = Metrics::new(ObsConfig::default());
        let b = Metrics::new(ObsConfig::default());
        a.incr("commits");
        a.add("commits", 4);
        a.set_gauge("buffered", 3);
        b.add("commits", 10);
        b.incr("gaps");
        b.set_gauge("buffered", 2);
        let mut agg = a.snapshot();
        agg.merge(&b.snapshot());
        assert_eq!(agg.counters["commits"], 15);
        assert_eq!(agg.counters["gaps"], 1);
        assert_eq!(agg.gauges["buffered"], 5);
    }

    #[test]
    fn histograms_merge_with_recomputed_quantiles() {
        let a = Metrics::new(ObsConfig::default());
        let b = Metrics::new(ObsConfig::default());
        for v in 1..=500u64 {
            a.observe("lat", v);
        }
        for v in 501..=1000u64 {
            b.observe("lat", v);
        }
        let mut agg = a.snapshot();
        agg.merge(&b.snapshot());
        let h = &agg.histograms["lat"];
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert!((480..=500).contains(&h.p50), "merged p50 = {}", h.p50);
        assert!((955..=990).contains(&h.p99), "merged p99 = {}", h.p99);
    }

    #[test]
    fn events_count_per_kind() {
        let m = Metrics::new(ObsConfig::default());
        let node = Addr::Replica(ReplicaId(0));
        m.record_event(10, node, Event::Commit { slot: 1 });
        m.record_event(20, node, Event::Commit { slot: 2 });
        m.record_event(30, node, Event::GapFind { slot: 3 });
        assert_eq!(m.event_count(EventKind::Commit), 2);
        assert_eq!(m.event_count(EventKind::GapFind), 1);
        assert_eq!(m.event_count(EventKind::GapCommit), 0);
        let snap = m.snapshot();
        assert_eq!(snap.event(EventKind::Commit), 2);
        assert_eq!(snap.event(EventKind::GapCommit), 0);
        assert!(!snap.events.contains_key("gap_commit"));
    }

    #[test]
    fn trace_is_bounded() {
        let m = Metrics::new(ObsConfig::default().with_trace(2));
        let node = Addr::Replica(ReplicaId(1));
        for slot in 0..5u64 {
            m.record_event(slot, node, Event::Commit { slot });
        }
        let trace = m.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].event, Event::Commit { slot: 0 });
        assert_eq!(m.snapshot().trace_dropped, 3);
        // Event counts are unaffected by the trace cap.
        assert_eq!(m.event_count(EventKind::Commit), 5);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let m = Metrics::new(ObsConfig::disabled());
        assert!(!m.enabled());
        m.incr("x");
        m.observe("h", 42);
        m.set_gauge("g", 7);
        m.record_event(0, Addr::Config, Event::RequestReceived);
        assert_eq!(m.counter("x"), 0);
        assert_eq!(m.event_count(EventKind::RequestReceived), 0);
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.take_trace().is_empty());
    }

    #[test]
    fn snapshots_serialize_to_json() {
        let m = Metrics::new(ObsConfig::default());
        m.incr("replica.messages_in");
        m.observe("client.latency_ns", 1500);
        m.record_event(5, Addr::Replica(ReplicaId(2)), Event::Commit { slot: 9 });
        let json = serde_json::to_string(&m.snapshot()).expect("serialize");
        assert!(json.contains("replica.messages_in"));
        assert!(json.contains("\"commit\":1"));
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m.snapshot());
    }
}
