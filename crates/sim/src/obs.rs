//! Protocol observability: metrics registries and structured event traces.
//!
//! Every figure in the paper is a claim about *where time goes* inside a
//! protocol — how many slots committed on the fast path versus through gap
//! agreement, how large confirm batches grew, how deep the aom reorder
//! buffer ran. [`crate::stats::NetStats`] counts only fabric-level traffic;
//! this module gives protocol code a per-node registry of monotonic
//! counters, gauges, and streaming histograms, plus a structured
//! [`Event`] trace, reachable from any handler through
//! [`crate::Context::metrics`] and [`crate::Context::emit`].
//!
//! ## Zero cost when disabled
//!
//! A registry built from [`ObsConfig::disabled`] short-circuits every
//! operation before touching its lock, and the default
//! [`crate::Context::metrics`] implementation returns a process-wide
//! disabled registry — so `Context` implementations that predate this
//! module (test probes, the switch models) compile unchanged and pay
//! nothing.
//!
//! ## Registry sharing
//!
//! All mutation goes through `&self` (a mutex guards the interior), so an
//! executor can hand the same registry to its event loop and to whoever is
//! reading snapshots — the simulator keeps one `Arc<Metrics>` per node
//! slot, the tokio runtime one per node thread. Snapshots are plain
//! serde-serializable values; [`MetricsSnapshot::merge`] folds the
//! per-node views into cluster aggregates for bench reports.

use crate::time::Time;
use neo_wire::Addr;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Per-node observability configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record counters, gauges, histograms, and event counts.
    pub metrics: bool,
    /// Keep the most recent `trace_capacity` [`EventRecord`]s per node in
    /// a ring; 0 disables the trace (event *counts* are still kept).
    /// Evicted records are tallied in [`MetricsSnapshot::trace_dropped`].
    pub trace_capacity: usize,
    /// Keep the most recent `packet_capacity` [`PacketRecord`]s per node
    /// (the flight recorder's packet-digest ring); 0 disables it.
    pub packet_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            metrics: true,
            trace_capacity: 0,
            packet_capacity: 0,
        }
    }
}

impl ObsConfig {
    /// Everything off: every registry operation is a no-op.
    pub fn disabled() -> Self {
        ObsConfig {
            metrics: false,
            trace_capacity: 0,
            packet_capacity: 0,
        }
    }

    /// Enable the bounded (most-recent) event trace with the given
    /// capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enable the packet-digest ring with the given capacity.
    pub fn with_packets(mut self, capacity: usize) -> Self {
        self.packet_capacity = capacity;
        self
    }

    /// The flight-recorder preset: metrics plus bounded event and packet
    /// rings sized so a dump tells a causal story without unbounded
    /// memory (used by the chaos explorer and the runtime exporter).
    pub fn flight_recorder() -> Self {
        ObsConfig::default().with_trace(4096).with_packets(512)
    }
}

/// A structured protocol event. Variants carry only the identifiers needed
/// to correlate a trace with a request, log slot, or view — payloads stay
/// out. Request-lifecycle events carry enough to be stitched into
/// per-request timelines by the span assembler (`neo-bench`): the client
/// side is keyed by `(client, request)`, the replica side by `slot`, and
/// `Commit` carries all three so the assembler can join them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A client issued a new request (span start).
    ClientSend { client: u64, request: u64 },
    /// A client collected its 2f+1 matching-reply quorum (span end).
    ClientCommit { client: u64, request: u64 },
    /// The sequencer stamped sequence number `seq` onto an aom packet.
    SequencerStamp { seq: u64 },
    /// A client request reached the node's protocol layer. For NeoBFT
    /// replicas this is the aom delivery into `slot`; protocols that
    /// receive requests before assigning an order report `slot: None`.
    RequestReceived { slot: Option<u64> },
    /// A slot was executed speculatively, ahead of the stable sync point.
    SpeculativeExecute { slot: u64 },
    /// An operation was executed and its reply issued (fast-path commit
    /// for NeoBFT, quorum commit for the baselines). `client`/`request`
    /// tie the slot back to the request for span assembly.
    Commit {
        slot: u64,
        client: u64,
        request: u64,
    },
    /// Gap agreement started for a missing slot.
    GapFind { slot: u64 },
    /// Gap agreement decided a slot (`noop` = the slot was voided).
    GapCommit { slot: u64, noop: bool },
    /// The node moved to a new view.
    ViewChange { view: u64 },
    /// The node installed a new sequencing epoch.
    EpochChange { epoch: u64 },
    /// A single aom confirm was produced for `seq` (Byzantine-network
    /// mode, §4.2).
    Confirm { seq: u64 },
    /// A batch of aom confirms was flushed to the group.
    ConfirmBatch { size: u32 },
    /// The aom layer declared a sequence number dropped.
    DropNotification { seq: u64 },
    /// The stable sync point advanced to `slot` (§B.2).
    SyncPoint { slot: u64 },
    /// The node queried the leader for a missing slot's certificate.
    Query { slot: u64 },
    /// The node answered a slot query with its ordering certificate.
    QueryReply { slot: u64 },
    /// A client flushed a multi-op batch envelope (`request` is the
    /// batch's first request id — the same id `ClientSend` carries).
    /// Only emitted for batches of more than one op, so unbatched runs
    /// produce exactly the pre-batching event stream.
    BatchFlush {
        client: u64,
        request: u64,
        size: u64,
    },
    /// A replica executed a multi-op batch occupying one slot.
    BatchExecute { slot: u64, size: u64 },
}

/// Discriminant-only view of [`Event`], used to index the per-kind counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    ClientSend,
    ClientCommit,
    SequencerStamp,
    RequestReceived,
    SpeculativeExecute,
    Commit,
    GapFind,
    GapCommit,
    ViewChange,
    EpochChange,
    Confirm,
    ConfirmBatch,
    DropNotification,
    SyncPoint,
    Query,
    QueryReply,
    BatchFlush,
    BatchExecute,
}

/// Number of [`EventKind`] variants.
pub const EVENT_KIND_COUNT: usize = 18;

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; EVENT_KIND_COUNT] = [
        EventKind::ClientSend,
        EventKind::ClientCommit,
        EventKind::SequencerStamp,
        EventKind::RequestReceived,
        EventKind::SpeculativeExecute,
        EventKind::Commit,
        EventKind::GapFind,
        EventKind::GapCommit,
        EventKind::ViewChange,
        EventKind::EpochChange,
        EventKind::Confirm,
        EventKind::ConfirmBatch,
        EventKind::DropNotification,
        EventKind::SyncPoint,
        EventKind::Query,
        EventKind::QueryReply,
        EventKind::BatchFlush,
        EventKind::BatchExecute,
    ];

    /// Stable snake_case name used as the key in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ClientSend => "client_send",
            EventKind::ClientCommit => "client_commit",
            EventKind::SequencerStamp => "sequencer_stamp",
            EventKind::RequestReceived => "request_received",
            EventKind::SpeculativeExecute => "speculative_execute",
            EventKind::Commit => "commit",
            EventKind::GapFind => "gap_find",
            EventKind::GapCommit => "gap_commit",
            EventKind::ViewChange => "view_change",
            EventKind::EpochChange => "epoch_change",
            EventKind::Confirm => "confirm",
            EventKind::ConfirmBatch => "confirm_batch",
            EventKind::DropNotification => "drop_notification",
            EventKind::SyncPoint => "sync_point",
            EventKind::Query => "query",
            EventKind::QueryReply => "query_reply",
            EventKind::BatchFlush => "batch_flush",
            EventKind::BatchExecute => "batch_execute",
        }
    }
}

impl Event {
    /// The kind discriminant of this event.
    pub fn kind(self) -> EventKind {
        match self {
            Event::ClientSend { .. } => EventKind::ClientSend,
            Event::ClientCommit { .. } => EventKind::ClientCommit,
            Event::SequencerStamp { .. } => EventKind::SequencerStamp,
            Event::RequestReceived { .. } => EventKind::RequestReceived,
            Event::SpeculativeExecute { .. } => EventKind::SpeculativeExecute,
            Event::Commit { .. } => EventKind::Commit,
            Event::GapFind { .. } => EventKind::GapFind,
            Event::GapCommit { .. } => EventKind::GapCommit,
            Event::ViewChange { .. } => EventKind::ViewChange,
            Event::EpochChange { .. } => EventKind::EpochChange,
            Event::Confirm { .. } => EventKind::Confirm,
            Event::ConfirmBatch { .. } => EventKind::ConfirmBatch,
            Event::DropNotification { .. } => EventKind::DropNotification,
            Event::SyncPoint { .. } => EventKind::SyncPoint,
            Event::Query { .. } => EventKind::Query,
            Event::QueryReply { .. } => EventKind::QueryReply,
            Event::BatchFlush { .. } => EventKind::BatchFlush,
            Event::BatchExecute { .. } => EventKind::BatchExecute,
        }
    }
}

/// One entry of the bounded per-node event trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Virtual (or wall) time the event was emitted, nanoseconds.
    pub at: Time,
    /// The emitting node.
    pub node: Addr,
    /// The event itself.
    pub event: Event,
}

/// One entry of the flight recorder's packet-digest ring: enough to see
/// what a node received around a failure without storing payloads.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Virtual (or wall) time the packet was delivered, nanoseconds.
    pub at: Time,
    /// Sender.
    pub from: Addr,
    /// Receiver (the node whose ring this is).
    pub to: Addr,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a digest of the payload bytes — cheap, deterministic, and
    /// good enough to tell retransmissions from distinct messages.
    pub digest: u64,
}

/// 64-bit FNV-1a over `bytes` (the packet-digest hash; not
/// collision-resistant, purely diagnostic).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// Histogram bucket layout: exact buckets for values < 64, then 32
// logarithmically-spaced sub-buckets per power of two (relative error
// bounded by 1/32 ≈ 3%). Covers the full u64 range in 1920 buckets.
const LINEAR_BUCKETS: usize = 64;
const SUB_BUCKETS: u64 = 32;
const N_BUCKETS: usize = LINEAR_BUCKETS + (64 - 6) * SUB_BUCKETS as usize;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let e = 63 - u64::from(v.leading_zeros());
    let sub = (v >> (e - 5)) & (SUB_BUCKETS - 1);
    (64 + (e - 6) * SUB_BUCKETS + sub) as usize
}

/// Lower bound of the values mapped to bucket `i` (the value reported for
/// quantiles landing in that bucket).
pub fn bucket_floor(i: u32) -> u64 {
    let i = u64::from(i);
    if i < LINEAR_BUCKETS as u64 {
        return i;
    }
    let e = 6 + (i - 64) / SUB_BUCKETS;
    let sub = (i - 64) % SUB_BUCKETS;
    (1u64 << e) + (sub << (e - 5))
}

/// A streaming histogram with bounded relative error (~3% above 64).
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; N_BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The value at quantile `q` in `[0, 1]` (lower bound of its bucket;
    /// 0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return bucket_floor(i as u32);
            }
        }
        self.max
    }

    /// Freeze into a serializable, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (i as u32, *c))
                .collect(),
        }
    }
}

/// Serializable summary of one [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// Sparse `(bucket index, count)` pairs — enough to merge snapshots
    /// across nodes without losing quantile accuracy.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 if empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Fold `other` into `self`, recomputing the quantiles from the merged
    /// sparse buckets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for (i, c) in &other.buckets {
            *merged.entry(*i).or_default() += c;
        }
        self.buckets = merged.into_iter().collect();
        self.p50 = quantile_from_buckets(&self.buckets, self.count, 0.50);
        self.p90 = quantile_from_buckets(&self.buckets, self.count, 0.90);
        self.p99 = quantile_from_buckets(&self.buckets, self.count, 0.99);
    }
}

fn quantile_from_buckets(buckets: &[(u32, u64)], count: u64, q: f64) -> u64 {
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut acc = 0u64;
    for (i, c) in buckets {
        acc += c;
        if acc >= target {
            return bucket_floor(*i);
        }
    }
    buckets.last().map(|(i, _)| bucket_floor(*i)).unwrap_or(0)
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    events: [u64; EVENT_KIND_COUNT],
    trace: VecDeque<EventRecord>,
    trace_dropped: u64,
    packets: VecDeque<PacketRecord>,
    packets_dropped: u64,
}

/// A per-node metrics registry.
///
/// All operations take `&self` (the interior is mutex-guarded) so one
/// registry can be shared between an executor's event loop and snapshot
/// readers via `Arc`. Every operation checks the enabled flag before
/// touching the lock, so a disabled registry costs one branch.
pub struct Metrics {
    enabled: bool,
    trace_capacity: usize,
    packet_capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new(ObsConfig::default())
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.enabled)
            .field("trace_capacity", &self.trace_capacity)
            .finish_non_exhaustive()
    }
}

impl Metrics {
    /// Build a registry from `cfg`.
    pub fn new(cfg: ObsConfig) -> Self {
        Metrics {
            enabled: cfg.metrics,
            trace_capacity: cfg.trace_capacity,
            packet_capacity: cfg.packet_capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The process-wide disabled registry, used by the default
    /// [`crate::Context::metrics`] implementation.
    pub fn disabled() -> &'static Metrics {
        static DISABLED: OnceLock<Metrics> = OnceLock::new();
        DISABLED.get_or_init(|| Metrics::new(ObsConfig::disabled()))
    }

    /// Whether this registry records anything. Instrumentation that does
    /// non-trivial work to *compute* a metric should guard on this.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Increment the monotonic counter `name` by 1.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment the monotonic counter `name` by `v`.
    pub fn add(&self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        if let Some(c) = inner.counters.get_mut(name) {
            *c += v;
        } else {
            inner.counters.insert(name.to_string(), v);
        }
    }

    /// Set the gauge `name` to `v` (a point-in-time level, e.g. a buffer
    /// depth).
    pub fn set_gauge(&self, name: &str, v: i64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        if let Some(g) = inner.gauges.get_mut(name) {
            *g = v;
        } else {
            inner.gauges.insert(name.to_string(), v);
        }
    }

    /// Record `v` into the streaming histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            inner.histograms.insert(name.to_string(), h);
        }
    }

    /// Count `ev` and, when tracing is enabled, append a record to the
    /// most-recent ring (the oldest record is evicted and tallied in
    /// `trace_dropped` once the ring is full). Called by the default
    /// [`crate::Context::emit`].
    pub fn record_event(&self, at: Time, node: Addr, ev: Event) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        inner.events[event_slot(ev.kind())] += 1;
        if self.trace_capacity > 0 {
            if inner.trace.len() == self.trace_capacity {
                inner.trace.pop_front();
                inner.trace_dropped += 1;
            }
            inner.trace.push_back(EventRecord {
                at,
                node,
                event: ev,
            });
        }
    }

    /// Record a delivered packet's digest into the flight recorder's ring
    /// (the oldest record is evicted once the ring is full). A no-op
    /// unless [`ObsConfig::packet_capacity`] is set.
    pub fn record_packet(&self, at: Time, from: Addr, to: Addr, payload: &[u8]) {
        if !self.enabled || self.packet_capacity == 0 {
            return;
        }
        let rec = PacketRecord {
            at,
            from,
            to,
            len: payload.len() as u64,
            digest: fnv1a(payload),
        };
        let mut inner = self.lock();
        if inner.packets.len() == self.packet_capacity {
            inner.packets.pop_front();
            inner.packets_dropped += 1;
        }
        inner.packets.push_back(rec);
    }

    /// Whether this registry keeps a packet-digest ring (instrumentation
    /// that must *hash* a payload should guard on this).
    pub fn records_packets(&self) -> bool {
        self.enabled && self.packet_capacity > 0
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Number of events of `kind` recorded so far.
    pub fn event_count(&self, kind: EventKind) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.lock().events[event_slot(kind)]
    }

    /// Drain the bounded event trace, leaving it empty.
    pub fn take_trace(&self) -> Vec<EventRecord> {
        if !self.enabled {
            return Vec::new();
        }
        std::mem::take(&mut self.lock().trace).into()
    }

    /// Copy the bounded event trace without draining it (flight-recorder
    /// dumps must not perturb a still-running node).
    pub fn trace_snapshot(&self) -> Vec<EventRecord> {
        if !self.enabled {
            return Vec::new();
        }
        self.lock().trace.iter().copied().collect()
    }

    /// Copy the packet-digest ring without draining it.
    pub fn packet_snapshot(&self) -> Vec<PacketRecord> {
        if !self.enabled {
            return Vec::new();
        }
        self.lock().packets.iter().copied().collect()
    }

    /// Freeze the registry into a serializable snapshot. Disabled
    /// registries snapshot to the empty default.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if !self.enabled {
            return MetricsSnapshot::default();
        }
        let inner = self.lock();
        let mut events = BTreeMap::new();
        for kind in EventKind::ALL {
            let n = inner.events[event_slot(kind)];
            if n > 0 {
                events.insert(kind.name().to_string(), n);
            }
        }
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            events,
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            trace_dropped: inner.trace_dropped,
            packets_dropped: inner.packets_dropped,
        }
    }

    /// Freeze the registry into a [`NodeFlight`] — the per-node unit of a
    /// flight-recorder dump: the metrics snapshot plus copies of the
    /// event and packet rings.
    pub fn flight(&self, node: Addr) -> NodeFlight {
        NodeFlight {
            node,
            snapshot: self.snapshot(),
            events: self.trace_snapshot(),
            packets: self.packet_snapshot(),
        }
    }
}

fn event_slot(kind: EventKind) -> usize {
    EventKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind listed in ALL")
}

/// Serializable point-in-time view of one registry (or, after
/// [`merge`](MetricsSnapshot::merge), of many).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters. Summed on merge.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (levels). Summed on merge, so a merged gauge reads as a
    /// cluster-wide total (e.g. total buffered envelopes).
    pub gauges: BTreeMap<String, i64>,
    /// Per-kind event counts, keyed by [`EventKind::name`]. Only nonzero
    /// kinds appear. Summed on merge.
    pub events: BTreeMap<String, u64>,
    /// Histograms, merged bucket-wise.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Trace records evicted because the per-node ring was full.
    #[serde(default)]
    pub trace_dropped: u64,
    /// Packet records evicted because the per-node ring was full.
    #[serde(default)]
    pub packets_dropped: u64,
}

impl MetricsSnapshot {
    /// Count of events of `kind` (0 if absent).
    pub fn event(&self, kind: EventKind) -> u64 {
        self.events.get(kind.name()).copied().unwrap_or(0)
    }

    /// Fold `other` into `self`: counters/gauges/events sum, histograms
    /// merge bucket-wise with quantiles recomputed.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.events {
            *self.events.entry(k.clone()).or_default() += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        self.trace_dropped += other.trace_dropped;
        self.packets_dropped += other.packets_dropped;
    }
}

/// One node's contribution to a flight-recorder dump.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeFlight {
    /// The node.
    pub node: Addr,
    /// Its metrics at dump time.
    pub snapshot: MetricsSnapshot,
    /// The most recent events (the trace ring's contents).
    pub events: Vec<EventRecord>,
    /// The most recent packet digests.
    #[serde(default)]
    pub packets: Vec<PacketRecord>,
}

/// A flight-recorder dump: every node's recent events, packet digests,
/// and metrics, frozen at the moment something went wrong. Serialized to
/// a JSON artifact on an invariant violation, a failed chaos sweep, or
/// SIGINT — the failure's black box, rendered by `neo-trace`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Why the dump was taken (`"invariant_violation"`, `"sigint"`, ...).
    pub reason: String,
    /// Virtual (or wall) time of the dump, nanoseconds.
    pub at: Time,
    /// Rendered safety violations, if any.
    #[serde(default)]
    pub violations: Vec<String>,
    /// Free-form context: chaos seed, serialized plan, run parameters.
    #[serde(default)]
    pub context: BTreeMap<String, String>,
    /// Per-node recent history.
    pub nodes: Vec<NodeFlight>,
}

impl FlightDump {
    /// All nodes' events merged into one timeline, sorted by time (ties
    /// keep per-node order — each node's ring is already chronological).
    pub fn merged_events(&self) -> Vec<EventRecord> {
        let mut all: Vec<EventRecord> = self
            .nodes
            .iter()
            .flat_map(|n| n.events.iter().copied())
            .collect();
        all.sort_by_key(|r| r.at);
        all
    }
}

/// One line of the live exporter's JSONL stream (`--obs-out`): a periodic
/// per-node snapshot plus the events emitted since the previous line
/// (the trace ring is drained into each line, so a stream's lines
/// concatenate into a complete bounded-loss event log).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsStreamLine {
    /// Time of the snapshot, nanoseconds since the run started.
    pub at: Time,
    /// The reporting node.
    pub node: Addr,
    /// Its metrics at that moment.
    pub snapshot: MetricsSnapshot,
    /// Events drained from the trace ring since the previous line.
    #[serde(default)]
    pub events: Vec<EventRecord>,
}

/// A node's self-reported protocol health: the sans-IO half of the
/// `/health` document. Implementations of [`crate::Node::health`] fill
/// this from their own state machine; the executor wraps it in a
/// [`HealthReport`] with the signals only it can see (verify pool,
/// durability lag).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeHealth {
    /// `"replica"`, `"client"`, `"sequencer"`, `"config"`, ...
    pub role: String,
    /// Installed sequencing epoch.
    pub epoch: u64,
    /// Current view's leader number within the epoch.
    pub view: u64,
    /// Recovery phase name (`None` if the node never ran recovery; a
    /// restarted replica reports `recovering` → `fetching_checkpoint` →
    /// `replaying` → `active`).
    pub recovery_phase: Option<String>,
    /// Slot the node resumed from after a restart.
    pub recovery_base: Option<u64>,
    /// Next slot to execute (the speculative execution cursor).
    pub last_exec: u64,
    /// Current log length in slots.
    pub log_len: u64,
    /// Stable sync point (§B.2).
    pub sync_point: u64,
    /// Sync-point slot of the newest certified checkpoint.
    pub stable_checkpoint: Option<u64>,
}

/// The full `/health` document for one node: protocol health plus
/// executor-side signals. Serialized as JSON by the telemetry server and
/// consumed by `neo-top`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// The node's address label (e.g. `"r0"`).
    pub node: String,
    /// False once the verify pool poisons or the node thread stops.
    pub healthy: bool,
    /// Committed operations so far ([`EventKind::Commit`] count).
    pub committed: u64,
    /// Verification tasks queued behind the worker pool.
    pub verify_queue_depth: u64,
    /// Verification tasks currently on worker threads.
    pub verify_in_flight: u64,
    /// A verify worker panicked; the node is stopping.
    pub verify_poisoned: bool,
    /// p99 of the durable store's fsync latency, nanoseconds (0 when the
    /// node has no store or has not flushed yet).
    pub fsync_p99_ns: u64,
    /// The state machine's own view of itself, if it reports one.
    #[serde(default)]
    pub protocol: Option<NodeHealth>,
}

/// Sanitize a metric name into the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — our dotted names (`store.fsync_ns`)
/// become underscored (`store_fsync_ns`).
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a Prometheus label value: backslash, double quote, newline.
fn prom_label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Inclusive upper bound of the values mapped to bucket `i`, or `None`
/// for the final bucket (rendered as `+Inf` only).
fn bucket_upper(i: u32) -> Option<u64> {
    if (i as usize) + 1 >= N_BUCKETS {
        None
    } else {
        Some(bucket_floor(i + 1) - 1)
    }
}

/// Render per-node metrics snapshots as Prometheus text exposition
/// (version 0.0.4): counters and per-kind event counts as `_total`
/// counter families, gauges as gauges, histograms as cumulative-bucket
/// histogram families with `le` bounds derived from the log-linear
/// bucket layout. Every sample carries a `node` label; families are
/// grouped so each `# TYPE` line appears exactly once per scrape.
pub fn render_prometheus(sources: &[(String, MetricsSnapshot)]) -> String {
    let mut out = String::new();

    // family name -> [(node, rendered value)]
    let mut counters: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    let mut gauges: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    let mut events: Vec<(String, String, u64)> = Vec::new(); // (node, kind, count)
    let mut hists: BTreeMap<String, Vec<(String, HistogramSnapshot)>> = BTreeMap::new();

    for (node, snap) in sources {
        let node = prom_label_escape(node);
        for (k, v) in &snap.counters {
            counters
                .entry(format!("neobft_{}_total", prom_name(k)))
                .or_default()
                .push((node.clone(), v.to_string()));
        }
        for (k, v) in &snap.gauges {
            gauges
                .entry(format!("neobft_{}", prom_name(k)))
                .or_default()
                .push((node.clone(), v.to_string()));
        }
        for (k, v) in &snap.events {
            events.push((node.clone(), prom_label_escape(k), *v));
        }
        for (k, h) in &snap.histograms {
            hists
                .entry(format!("neobft_{}", prom_name(k)))
                .or_default()
                .push((node.clone(), h.clone()));
        }
    }

    for (family, samples) in &counters {
        out.push_str(&format!("# TYPE {family} counter\n"));
        for (node, v) in samples {
            out.push_str(&format!("{family}{{node=\"{node}\"}} {v}\n"));
        }
    }
    for (family, samples) in &gauges {
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (node, v) in samples {
            out.push_str(&format!("{family}{{node=\"{node}\"}} {v}\n"));
        }
    }
    if !events.is_empty() {
        out.push_str("# TYPE neobft_events_total counter\n");
        for (node, kind, v) in &events {
            out.push_str(&format!(
                "neobft_events_total{{node=\"{node}\",kind=\"{kind}\"}} {v}\n"
            ));
        }
    }
    for (family, samples) in &hists {
        out.push_str(&format!("# TYPE {family} histogram\n"));
        for (node, h) in samples {
            let mut cum = 0u64;
            for (i, c) in &h.buckets {
                cum += c;
                if let Some(le) = bucket_upper(*i) {
                    out.push_str(&format!(
                        "{family}_bucket{{node=\"{node}\",le=\"{le}\"}} {cum}\n"
                    ));
                }
            }
            out.push_str(&format!(
                "{family}_bucket{{node=\"{node}\",le=\"+Inf\"}} {}\n",
                h.count
            ));
            out.push_str(&format!("{family}_sum{{node=\"{node}\"}} {}\n", h.sum));
            out.push_str(&format!("{family}_count{{node=\"{node}\"}} {}\n", h.count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::ReplicaId;

    #[test]
    fn bucket_mapping_roundtrips() {
        for v in [0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            let floor = bucket_floor(i as u32);
            assert!(floor <= v, "floor {floor} > value {v}");
            // Relative error is bounded by one sub-bucket width.
            if v >= 64 {
                assert!(v - floor <= v / 32, "bucket too wide at {v}");
            } else {
                assert_eq!(floor, v);
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!((480..=500).contains(&p50), "p50 = {p50}");
        assert!((870..=900).contains(&p90), "p90 = {p90}");
        assert!((955..=990).contains(&p99), "p99 = {p99}");
        let snap = h.snapshot();
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.mean(), 500);
    }

    #[test]
    fn small_histograms_are_exact() {
        let mut h = Histogram::default();
        for v in [3u64, 5, 5, 7] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn counters_merge_across_nodes() {
        let a = Metrics::new(ObsConfig::default());
        let b = Metrics::new(ObsConfig::default());
        a.incr("commits");
        a.add("commits", 4);
        a.set_gauge("buffered", 3);
        b.add("commits", 10);
        b.incr("gaps");
        b.set_gauge("buffered", 2);
        let mut agg = a.snapshot();
        agg.merge(&b.snapshot());
        assert_eq!(agg.counters["commits"], 15);
        assert_eq!(agg.counters["gaps"], 1);
        assert_eq!(agg.gauges["buffered"], 5);
    }

    #[test]
    fn histograms_merge_with_recomputed_quantiles() {
        let a = Metrics::new(ObsConfig::default());
        let b = Metrics::new(ObsConfig::default());
        for v in 1..=500u64 {
            a.observe("lat", v);
        }
        for v in 501..=1000u64 {
            b.observe("lat", v);
        }
        let mut agg = a.snapshot();
        agg.merge(&b.snapshot());
        let h = &agg.histograms["lat"];
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert!((480..=500).contains(&h.p50), "merged p50 = {}", h.p50);
        assert!((955..=990).contains(&h.p99), "merged p99 = {}", h.p99);
    }

    fn commit(slot: u64) -> Event {
        Event::Commit {
            slot,
            client: 0,
            request: slot + 1,
        }
    }

    #[test]
    fn events_count_per_kind() {
        let m = Metrics::new(ObsConfig::default());
        let node = Addr::Replica(ReplicaId(0));
        m.record_event(10, node, commit(1));
        m.record_event(20, node, commit(2));
        m.record_event(30, node, Event::GapFind { slot: 3 });
        assert_eq!(m.event_count(EventKind::Commit), 2);
        assert_eq!(m.event_count(EventKind::GapFind), 1);
        assert_eq!(m.event_count(EventKind::GapCommit), 0);
        let snap = m.snapshot();
        assert_eq!(snap.event(EventKind::Commit), 2);
        assert_eq!(snap.event(EventKind::GapCommit), 0);
        assert!(!snap.events.contains_key("gap_commit"));
    }

    #[test]
    fn trace_ring_keeps_most_recent() {
        let m = Metrics::new(ObsConfig::default().with_trace(2));
        let node = Addr::Replica(ReplicaId(1));
        for slot in 0..5u64 {
            m.record_event(slot, node, commit(slot));
        }
        // Ring semantics: the *oldest* records are evicted, so a dump
        // shows what happened just before a failure.
        assert_eq!(
            m.trace_snapshot().iter().map(|r| r.at).collect::<Vec<_>>(),
            vec![3, 4]
        );
        let trace = m.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].event, commit(3));
        assert_eq!(trace[1].event, commit(4));
        assert_eq!(m.snapshot().trace_dropped, 3);
        // Event counts are unaffected by the trace cap.
        assert_eq!(m.event_count(EventKind::Commit), 5);
        // take_trace drained the ring; the snapshot copy did not.
        assert!(m.take_trace().is_empty());
    }

    #[test]
    fn packet_ring_records_digests() {
        let m = Metrics::new(ObsConfig::default().with_packets(2));
        assert!(m.records_packets());
        let a = Addr::Replica(ReplicaId(0));
        let b = Addr::Replica(ReplicaId(1));
        m.record_packet(1, a, b, b"one");
        m.record_packet(2, a, b, b"two");
        m.record_packet(3, a, b, b"three");
        let packets = m.packet_snapshot();
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].at, 2);
        assert_eq!(packets[1].at, 3);
        assert_eq!(packets[1].len, 5);
        assert_eq!(packets[1].digest, fnv1a(b"three"));
        assert_ne!(packets[0].digest, packets[1].digest);
        assert_eq!(m.snapshot().packets_dropped, 1);
        // Without packet capacity, recording is a no-op.
        let off = Metrics::new(ObsConfig::default());
        assert!(!off.records_packets());
        off.record_packet(1, a, b, b"x");
        assert!(off.packet_snapshot().is_empty());
    }

    #[test]
    fn disabled_registry_is_inert() {
        let m = Metrics::new(ObsConfig::disabled());
        assert!(!m.enabled());
        m.incr("x");
        m.observe("h", 42);
        m.set_gauge("g", 7);
        m.record_event(0, Addr::Config, Event::RequestReceived { slot: None });
        m.record_packet(0, Addr::Config, Addr::Config, b"ignored");
        assert_eq!(m.counter("x"), 0);
        assert_eq!(m.event_count(EventKind::RequestReceived), 0);
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.take_trace().is_empty());
        assert!(m.packet_snapshot().is_empty());
    }

    #[test]
    fn snapshots_serialize_to_json() {
        let m = Metrics::new(ObsConfig::default());
        m.incr("replica.messages_in");
        m.observe("client.latency_ns", 1500);
        m.record_event(5, Addr::Replica(ReplicaId(2)), commit(9));
        let json = serde_json::to_string(&m.snapshot()).expect("serialize");
        assert!(json.contains("replica.messages_in"));
        assert!(json.contains("\"commit\":1"));
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let m = Metrics::new(ObsConfig::default());
        m.incr("c");
        m.observe("h", 9);
        m.record_event(1, Addr::Config, Event::GapFind { slot: 0 });
        let base = m.snapshot();

        // empty.merge(full) == full.
        let mut empty = MetricsSnapshot::default();
        empty.merge(&base);
        assert_eq!(empty, base);
        // full.merge(empty) == full.
        let mut full = base.clone();
        full.merge(&MetricsSnapshot::default());
        assert_eq!(full, base);
        // empty.merge(empty) == empty.
        let mut e = MetricsSnapshot::default();
        e.merge(&MetricsSnapshot::default());
        assert_eq!(e, MetricsSnapshot::default());
    }

    #[test]
    fn merge_is_associative_across_three_nodes() {
        let nodes: Vec<MetricsSnapshot> = (0..3u64)
            .map(|i| {
                let m = Metrics::new(ObsConfig::default().with_trace(4));
                m.add("ops", i + 1);
                m.set_gauge("depth", i as i64);
                for v in [i + 1, 10 * (i + 1), 1000 * (i + 1)] {
                    m.observe("lat", v);
                }
                m.record_event(i, Addr::Replica(ReplicaId(i as u32)), commit(i));
                m.snapshot()
            })
            .collect();
        // (a ⊕ b) ⊕ c
        let mut left = nodes[0].clone();
        left.merge(&nodes[1]);
        left.merge(&nodes[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = nodes[1].clone();
        bc.merge(&nodes[2]);
        let mut right = nodes[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.counters["ops"], 6);
        assert_eq!(left.gauges["depth"], 3);
        assert_eq!(left.histograms["lat"].count, 9);
        assert_eq!(left.event(EventKind::Commit), 3);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        h.observe(1);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, u64::MAX, "sum saturates");
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.min, 1);
        // Merging two saturated snapshots stays saturated.
        let mut a = snap.clone();
        a.merge(&snap);
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.count, 6);
        assert_eq!(a.p99, bucket_floor(bucket_index(u64::MAX) as u32));
    }

    #[test]
    fn flight_dump_round_trips_and_merges_events() {
        let m = Metrics::new(ObsConfig::flight_recorder());
        let a = Addr::Replica(ReplicaId(0));
        let b = Addr::Client(neo_wire::ClientId(1));
        m.record_event(20, a, commit(0));
        m.record_packet(5, b, a, b"payload");
        let ma = m.flight(a);
        let mb = Metrics::new(ObsConfig::flight_recorder());
        mb.record_event(
            10,
            b,
            Event::ClientSend {
                client: 1,
                request: 1,
            },
        );
        let dump = FlightDump {
            reason: "test".into(),
            at: 30,
            violations: vec!["prefix divergence".into()],
            context: BTreeMap::new(),
            nodes: vec![ma, mb.flight(b)],
        };
        let json = serde_json::to_string_pretty(&dump).expect("serialize");
        let back: FlightDump = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, dump);
        // Merged timeline is time-sorted across nodes.
        let merged = back.merged_events();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].at, 10);
        assert_eq!(merged[0].node, b);
        assert_eq!(merged[1].at, 20);
    }

    #[test]
    fn prometheus_rendering_matches_golden() {
        let m = Metrics::new(ObsConfig::default());
        m.add("replica.messages_in", 7);
        m.set_gauge("verify.queue_depth", 3);
        m.record_event(1, Addr::Replica(ReplicaId(0)), commit(0));
        m.record_event(2, Addr::Replica(ReplicaId(0)), commit(1));
        for v in [3u64, 5, 70] {
            m.observe("store.fsync_ns", v);
        }
        let text = render_prometheus(&[("r0".into(), m.snapshot())]);
        // Values 3 and 5 land in exact linear buckets (le = value); 70
        // lands in the [70, 71] log-linear bucket (le = 71).
        let golden = "\
# TYPE neobft_replica_messages_in_total counter
neobft_replica_messages_in_total{node=\"r0\"} 7
# TYPE neobft_verify_queue_depth gauge
neobft_verify_queue_depth{node=\"r0\"} 3
# TYPE neobft_events_total counter
neobft_events_total{node=\"r0\",kind=\"commit\"} 2
# TYPE neobft_store_fsync_ns histogram
neobft_store_fsync_ns_bucket{node=\"r0\",le=\"3\"} 1
neobft_store_fsync_ns_bucket{node=\"r0\",le=\"5\"} 2
neobft_store_fsync_ns_bucket{node=\"r0\",le=\"71\"} 3
neobft_store_fsync_ns_bucket{node=\"r0\",le=\"+Inf\"} 3
neobft_store_fsync_ns_sum{node=\"r0\"} 78
neobft_store_fsync_ns_count{node=\"r0\"} 3
";
        assert_eq!(text, golden);
    }

    #[test]
    fn prometheus_escapes_names_and_labels() {
        assert_eq!(prom_name("store.fsync_ns"), "store_fsync_ns");
        assert_eq!(
            prom_name("runtime.send_failed.c9"),
            "runtime_send_failed_c9"
        );
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name(""), "_");
        let m = Metrics::new(ObsConfig::default());
        m.incr("ops");
        let text = render_prometheus(&[("a\"b\\c\n".into(), m.snapshot())]);
        assert!(
            text.contains("neobft_ops_total{node=\"a\\\"b\\\\c\\n\"} 1"),
            "label not escaped: {text}"
        );
    }

    #[test]
    fn prometheus_type_lines_are_unique_across_nodes() {
        let a = Metrics::new(ObsConfig::default());
        let b = Metrics::new(ObsConfig::default());
        a.incr("ops");
        b.add("ops", 2);
        a.observe("lat", 10);
        b.observe("lat", 20);
        let text = render_prometheus(&[("r0".into(), a.snapshot()), ("r1".into(), b.snapshot())]);
        assert_eq!(text.matches("# TYPE neobft_ops_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE neobft_lat histogram").count(), 1);
        assert!(text.contains("neobft_ops_total{node=\"r0\"} 1"));
        assert!(text.contains("neobft_ops_total{node=\"r1\"} 2"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_monotonic() {
        let m = Metrics::new(ObsConfig::default());
        for v in [1u64, 1, 50, 900, 70_000, 5_000_000, u64::MAX] {
            m.observe("lat_ns", v);
        }
        let text = render_prometheus(&[("r0".into(), m.snapshot())]);
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if !line.starts_with("neobft_lat_ns_bucket") {
                continue;
            }
            bucket_lines += 1;
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "non-monotonic cumulative bucket: {line}");
            last = count;
        }
        assert!(bucket_lines >= 6, "expected per-value buckets plus +Inf");
        assert!(text.ends_with("neobft_lat_ns_count{node=\"r0\"} 7\n"));
        assert!(text.contains("le=\"+Inf\"} 7"));
    }

    #[test]
    fn prometheus_zero_histogram_renders_inf_only() {
        // A merged snapshot can carry a histogram entry with no samples.
        let mut snap = MetricsSnapshot::default();
        snap.histograms
            .insert("empty_ns".into(), HistogramSnapshot::default());
        let text = render_prometheus(&[("r0".into(), snap)]);
        let golden = "\
# TYPE neobft_empty_ns histogram
neobft_empty_ns_bucket{node=\"r0\",le=\"+Inf\"} 0
neobft_empty_ns_sum{node=\"r0\"} 0
neobft_empty_ns_count{node=\"r0\"} 0
";
        assert_eq!(text, golden);
    }

    #[test]
    fn health_report_round_trips_json() {
        let report = HealthReport {
            node: "r1".into(),
            healthy: true,
            committed: 42,
            verify_queue_depth: 3,
            verify_in_flight: 1,
            verify_poisoned: false,
            fsync_p99_ns: 1500,
            protocol: Some(NodeHealth {
                role: "replica".into(),
                epoch: 2,
                view: 1,
                recovery_phase: Some("active".into()),
                recovery_base: Some(128),
                last_exec: 512,
                log_len: 520,
                sync_point: 500,
                stable_checkpoint: Some(384),
            }),
        };
        let json = serde_json::to_string(&report).expect("serialize");
        let back: HealthReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }
}
