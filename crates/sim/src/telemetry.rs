//! The live telemetry plane: a zero-dependency HTTP scrape endpoint.
//!
//! A [`TelemetryServer`] is one background thread owning a std
//! [`TcpListener`] and answering two routes:
//!
//! - `GET /metrics` — Prometheus text exposition rendered from every
//!   source's current [`MetricsSnapshot`] (see
//!   [`crate::obs::render_prometheus`]).
//! - `GET /health` — a JSON array of [`HealthReport`]s, one per node.
//!
//! Everything else is 404. The server is deliberately minimal: it reads
//! one request, writes one `Connection: close` response, and hangs up —
//! exactly what a scraper or `curl` needs, with no keep-alive state to
//! manage. It mirrors the `ObsExporter` lifecycle (spawn thread, signal
//! stop through a channel, join on drop/stop).
//!
//! Data flows in through a [`TelemetryProvider`]: the tokio runtime
//! implements it over live per-node registries; the simulator-based
//! harnesses publish snapshots into a [`TelemetryHub`] at slice
//! boundaries and hand the hub to the server.

use crate::obs::{render_prometheus, HealthReport, MetricsSnapshot};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where a scrape's data comes from. `scrape` is called once per
/// `/metrics` request (and once per `/health` request, for the
/// histogram-derived fields), so implementations should snapshot live
/// registries rather than cache.
pub trait TelemetryProvider: Send + Sync {
    /// Current `(node label, metrics snapshot)` per node.
    fn scrape(&self) -> Vec<(String, MetricsSnapshot)>;

    /// Current per-node health documents.
    fn health(&self) -> Vec<HealthReport>;
}

/// A [`TelemetryProvider`] fed by periodic publication: harnesses that
/// own their nodes (the simulator-driven chaos runner) push each node's
/// snapshot and health document at slice boundaries; scrapes read the
/// latest published state.
#[derive(Default)]
pub struct TelemetryHub {
    inner: Mutex<BTreeMap<String, (MetricsSnapshot, HealthReport)>>,
}

impl TelemetryHub {
    /// Empty hub, ready to publish into.
    pub fn new() -> Self {
        TelemetryHub::default()
    }

    /// Install `node`'s latest snapshot and health document, replacing
    /// any previous publication.
    pub fn publish(&self, node: &str, snapshot: MetricsSnapshot, health: HealthReport) {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        inner.insert(node.to_string(), (snapshot, health));
    }

    /// Number of nodes that have published at least once.
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(g) => g.len(),
            Err(p) => p.into_inner().len(),
        }
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetryProvider for TelemetryHub {
    fn scrape(&self) -> Vec<(String, MetricsSnapshot)> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        inner
            .iter()
            .map(|(k, (snap, _))| (k.clone(), snap.clone()))
            .collect()
    }

    fn health(&self) -> Vec<HealthReport> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        inner.values().map(|(_, h)| h.clone()).collect()
    }
}

/// Upper bound on an accepted request's header bytes: a scrape request
/// is a few hundred bytes; anything larger is not a scraper.
const MAX_REQUEST_BYTES: usize = 8192;

/// The scrape endpoint's background thread. Dropping the handle without
/// [`stop`](TelemetryServer::stop) leaves the thread running until
/// process exit (same contract as a detached exporter); call `stop` for
/// an orderly join.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks a free port)
    /// and start answering scrapes from `provider`.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        provider: Arc<dyn TelemetryProvider>,
    ) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = stop.clone();
        let join = std::thread::Builder::new()
            .name("neo-telemetry".into())
            .spawn(move || serve_loop(listener, provider, stop_thread))?;
        Ok(TelemetryServer {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// The bound address (useful when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the thread to stop and join it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn serve_loop(listener: TcpListener, provider: Arc<dyn TelemetryProvider>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One request per connection, served inline: scrape
                // cadence is seconds, responses are small, and inline
                // handling keeps the thread budget at exactly one.
                let _ = serve_one(stream, provider.as_ref());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Read one HTTP request (just the request line matters) and write the
/// matching response.
fn serve_one(mut stream: TcpStream, provider: &dyn TelemetryProvider) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the blank line ending the header block (we ignore
    // bodies: both routes are GET).
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > MAX_REQUEST_BYTES {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "request too large",
            );
        }
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
    }
    let request_line = match std::str::from_utf8(&buf) {
        Ok(text) => text.lines().next().unwrap_or("").to_string(),
        Err(_) => return respond(&mut stream, "400 Bad Request", "text/plain", "not utf-8"),
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported",
        );
    }
    // Strip any query string: scrapers may append one.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = render_prometheus(&provider.scrape());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/health" => {
            let reports = provider.health();
            let body = serde_json::to_string_pretty(&reports).unwrap_or_else(|_| "[]".to_string());
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "routes: /metrics /health",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Metrics, ObsConfig};

    /// Minimal scrape client (tests only): GET `path`, return the body.
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n");
        stream.write_all(req.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    fn hub_with_one_node() -> Arc<TelemetryHub> {
        let hub = Arc::new(TelemetryHub::new());
        let m = Metrics::new(ObsConfig::default());
        m.add("ops", 5);
        hub.publish(
            "r0",
            m.snapshot(),
            HealthReport {
                node: "r0".into(),
                healthy: true,
                committed: 5,
                ..HealthReport::default()
            },
        );
        hub
    }

    #[test]
    fn serves_metrics_and_health() {
        let hub = hub_with_one_node();
        let server = TelemetryServer::start("127.0.0.1:0", hub.clone()).expect("bind");
        let addr = server.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("neobft_ops_total{node=\"r0\"} 5"), "{body}");

        let (head, body) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let reports: Vec<HealthReport> = serde_json::from_str(&body).expect("health JSON");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].node, "r0");
        assert_eq!(reports[0].committed, 5);

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.stop();
    }

    #[test]
    fn scrapes_see_fresh_publications() {
        let hub = hub_with_one_node();
        let server = TelemetryServer::start("127.0.0.1:0", hub.clone()).expect("bind");
        let addr = server.local_addr();
        let m = Metrics::new(ObsConfig::default());
        m.add("ops", 9);
        hub.publish(
            "r0",
            m.snapshot(),
            HealthReport {
                node: "r0".into(),
                healthy: true,
                committed: 9,
                ..HealthReport::default()
            },
        );
        let (_, body) = http_get(addr, "/metrics");
        assert!(body.contains("neobft_ops_total{node=\"r0\"} 9"), "{body}");
        server.stop();
    }

    #[test]
    fn rejects_non_get() {
        let hub = hub_with_one_node();
        let server = TelemetryServer::start("127.0.0.1:0", hub).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.stop();
    }
}
