//! Property-based tests of the simulator's core guarantees:
//! determinism, message conservation, and CPU accounting.

use neo_sim::{Context, CpuConfig, FaultPlan, NetConfig, Node, SimConfig, Simulator, TimerId};
use neo_wire::{Addr, ReplicaId};
use proptest::prelude::*;
use std::any::Any;

/// Forwards every message around a ring and counts what it sees.
struct Ring {
    next: Addr,
    hops_left: u32,
    seen: Vec<Vec<u8>>,
}

impl Node for Ring {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        self.seen.push(payload.to_vec());
        if self.hops_left > 0 {
            self.hops_left -= 1;
            ctx.send(self.next, payload.into());
        }
    }
    fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn ring_sim(seed: u64, drop_rate: f64, nodes: usize, budget: u32) -> Simulator {
    let mut sim = Simulator::new(SimConfig {
        net: NetConfig {
            one_way_latency_ns: 1_000,
            jitter_ns: 300,
            ns_per_128_bytes: 0,
            drop_rate,
        },
        default_cpu: CpuConfig::IDEAL,
        seed,
        faults: FaultPlan::none(),
    });
    for i in 0..nodes {
        let next = Addr::Replica(ReplicaId(((i + 1) % nodes) as u32));
        sim.add_node(
            Addr::Replica(ReplicaId(i as u32)),
            Box::new(Ring {
                next,
                hops_left: budget,
                seen: vec![],
            }),
        );
    }
    sim
}

proptest! {
    /// Identical seeds produce byte-identical traces, across any loss
    /// rate and topology size.
    #[test]
    fn same_seed_same_trace(
        seed in any::<u64>(),
        drop_pct in 0u32..50,
        nodes in 2usize..6,
        messages in 1usize..20,
    ) {
        let run = || {
            let mut sim = ring_sim(seed, drop_pct as f64 / 100.0, nodes, 16);
            for m in 0..messages {
                sim.post(
                    Addr::Replica(ReplicaId(99)),
                    Addr::Replica(ReplicaId((m % nodes) as u32)),
                    vec![m as u8],
                    (m * 100) as u64,
                );
            }
            sim.run_until(10_000_000);
            let traces: Vec<Vec<Vec<u8>>> = (0..nodes)
                .map(|i| {
                    sim.node_ref::<Ring>(Addr::Replica(ReplicaId(i as u32)))
                        .unwrap()
                        .seen
                        .clone()
                })
                .collect();
            (traces, sim.stats())
        };
        prop_assert_eq!(run(), run());
    }

    /// Conservation: every sent message is delivered or dropped, never
    /// duplicated or lost untracked.
    #[test]
    fn messages_are_conserved(
        seed in any::<u64>(),
        drop_pct in 0u32..80,
        messages in 1usize..30,
    ) {
        let mut sim = ring_sim(seed, drop_pct as f64 / 100.0, 3, 8);
        for m in 0..messages {
            sim.post(
                Addr::Replica(ReplicaId(99)),
                Addr::Replica(ReplicaId(0)),
                vec![m as u8],
                0,
            );
        }
        sim.run_until(100_000_000);
        let s = sim.stats();
        prop_assert_eq!(s.delivered + s.dropped(), s.sent);
    }

    /// The serial CPU never records more busy time than elapsed virtual
    /// time (single dispatch core), and deliveries equal handler runs.
    #[test]
    fn cpu_busy_time_is_bounded_by_elapsed(
        seed in any::<u64>(),
        dispatch in 1u64..5_000,
        messages in 1usize..40,
    ) {
        let mut sim = Simulator::new(SimConfig {
            net: NetConfig::IDEAL,
            default_cpu: CpuConfig {
                dispatch_ns: dispatch,
                send_ns: 0,
                ns_per_kb: 0,
                cores: 1,
            },
            seed,
            faults: FaultPlan::none(),
        });
        sim.add_node(
            Addr::Replica(ReplicaId(0)),
            Box::new(Ring {
                next: Addr::Replica(ReplicaId(0)),
                hops_left: 0,
                seen: vec![],
            }),
        );
        for m in 0..messages {
            sim.post(
                Addr::Replica(ReplicaId(99)),
                Addr::Replica(ReplicaId(0)),
                vec![m as u8],
                0,
            );
        }
        sim.run_until(u64::MAX / 2);
        let (busy, _) = sim.cpu_busy(Addr::Replica(ReplicaId(0))).unwrap();
        prop_assert_eq!(busy, dispatch * messages as u64);
        let seen = sim
            .node_ref::<Ring>(Addr::Replica(ReplicaId(0)))
            .unwrap()
            .seen
            .len();
        prop_assert_eq!(seen, messages);
    }
}
