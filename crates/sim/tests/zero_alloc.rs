//! Allocation regression test for the disabled-registry hot path.
//!
//! Every `ctx.emit(..)` / `metrics.incr(..)` in protocol code funnels
//! through [`Metrics`] even when observability is off, so the disabled
//! path sits on the per-message fast path of both runtimes. It must
//! stay a branch on a plain bool — no heap traffic. A counting global
//! allocator catches any regression (an eager `to_string`, a record
//! built before the enabled check, ...) that the type system cannot.

use neo_sim::obs::{Event, Metrics, ObsConfig};
use neo_wire::{Addr, ClientId, GroupId, ReplicaId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_registry_hot_path_does_not_allocate() {
    // First call initializes the OnceLock'd registry — pay that before
    // the measurement window.
    let m = Metrics::disabled();
    assert!(!m.enabled());

    let payload = [0u8; 1024];
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        m.incr("runtime.rx_packets");
        m.add("runtime.rx_bytes", 1024);
        m.set_gauge("runtime.backlog", i as i64);
        m.observe("handler_ns", i);
        m.record_event(
            i,
            Addr::Replica(ReplicaId(0)),
            Event::Commit {
                slot: i,
                client: 3,
                request: i,
            },
        );
        m.record_event(
            i,
            Addr::Client(ClientId(3)),
            Event::ClientSend {
                client: 3,
                request: i,
            },
        );
        m.record_packet(
            i,
            Addr::Sequencer(GroupId(0)),
            Addr::Replica(ReplicaId(1)),
            &payload,
        );
        assert!(!m.records_packets());
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled-registry hot path allocated {} time(s) over 70k calls",
        after - before
    );
}

#[test]
fn enabled_registry_records_what_the_disabled_one_ignores() {
    // Control for the test above: the same call sequence against an
    // enabled registry must observably land, proving the zero-alloc
    // assertion is exercising real entry points and not dead stubs.
    let m = Metrics::new(ObsConfig::flight_recorder());
    m.incr("runtime.rx_packets");
    m.observe("handler_ns", 42);
    m.record_event(
        7,
        Addr::Replica(ReplicaId(0)),
        Event::SpeculativeExecute { slot: 1 },
    );
    m.record_packet(
        8,
        Addr::Client(ClientId(0)),
        Addr::Replica(ReplicaId(0)),
        b"x",
    );
    let snap = m.snapshot();
    assert_eq!(snap.counters["runtime.rx_packets"], 1);
    assert_eq!(snap.histograms["handler_ns"].count, 1);
    assert_eq!(snap.events["speculative_execute"], 1);
    assert_eq!(m.flight(Addr::Replica(ReplicaId(0))).packets.len(), 1);
}
