//! Perf-regression comparison over committed sweep reports.
//!
//! `neo-bench compare <old.json> <new.json>` diffs two reports produced
//! by the sweep binaries (`batch_sweep`, `verify_sweep` — any report
//! with a `bench` name and a `rows` array). Rows are matched by their
//! identity fields (`protocol`, `mode`, `workers`, `batch`); each
//! shared metric is checked against a tolerance band:
//!
//! - *higher-is-better* metrics (`ops_per_sec`, `committed`) must stay
//!   at or above `floor × old` (default 0.8 — a >20% drop fails);
//! - *lower-is-better* metrics (names ending `_ns`) must stay at or
//!   below `ceiling × old` (default 1.25 — a >25% latency inflation
//!   fails);
//! - anything else is informational and never gates.
//!
//! Reports marked `"provisional": true` carry modeled numbers, not
//! measurements, so value regressions against them degrade to warnings
//! (the same convention the sweep binaries' own `--check` uses).
//! Structural drift — a row present in the old report but missing from
//! the new one, or mismatched `bench` names — always fails: coverage
//! loss is detectable without calibrated hardware.

use serde_json::Value;
use std::collections::BTreeMap;

/// Fields that identify a row across runs (whichever are present).
pub const IDENTITY_FIELDS: [&str; 4] = ["protocol", "mode", "workers", "batch"];

/// Metrics where larger is better (gated by the floor).
pub const HIGHER_BETTER: [&str; 2] = ["ops_per_sec", "committed"];

/// Tolerance bands for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Higher-is-better metrics must stay ≥ `floor × old`.
    pub floor: f64,
    /// Lower-is-better metrics must stay ≤ `ceiling × old`.
    pub ceiling: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            floor: 0.8,
            ceiling: 1.25,
        }
    }
}

/// How one metric of one row moved between the reports.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Row identity (`protocol=… batch=…`).
    pub key: String,
    /// Metric name.
    pub metric: String,
    /// Old value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Whether the move broke its tolerance band.
    pub regressed: bool,
    /// Whether this metric gates at all (identity/informational fields
    /// produce no delta; a gating metric with `old == 0` is recorded but
    /// never regresses — there is no ratio to take).
    pub gated: bool,
}

impl Delta {
    /// Signed relative change in percent (`+` = value grew).
    pub fn pct(&self) -> f64 {
        if self.old == 0.0 {
            0.0
        } else {
            (self.new - self.old) / self.old * 100.0
        }
    }
}

/// Outcome of comparing two reports.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// The `bench` name both reports carry.
    pub bench: String,
    /// Whether either input is marked provisional (value regressions
    /// degrade to warnings).
    pub provisional: bool,
    /// Every compared metric, in row order of the old report.
    pub deltas: Vec<Delta>,
    /// Row keys present in the old report but absent from the new one.
    pub missing_rows: Vec<String>,
    /// Row keys only the new report has (informational).
    pub added_rows: Vec<String>,
}

impl CompareReport {
    /// Deltas that broke their band.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Gate verdict: structural drift always fails; value regressions
    /// fail only when both inputs are measured (non-provisional).
    pub fn passed(&self) -> bool {
        self.missing_rows.is_empty() && (self.provisional || self.regressions().is_empty())
    }
}

/// Identity of a row: its identity fields, in canonical order.
pub fn row_key(row: &Value) -> String {
    let parts: Vec<String> = IDENTITY_FIELDS
        .iter()
        .filter_map(|f| row.get(*f).map(|v| format!("{f}={v}")))
        .collect();
    if parts.is_empty() {
        "<unkeyed>".to_string()
    } else {
        parts.join(" ")
    }
}

/// Whether (and how) a metric gates. `None` = identity/informational.
fn higher_better(name: &str) -> Option<bool> {
    if HIGHER_BETTER.contains(&name) {
        Some(true)
    } else if name.ends_with("_ns") {
        Some(false)
    } else {
        None
    }
}

/// Compare two parsed reports. Errors on shape problems (missing `rows`,
/// mismatched `bench` names) — those are operator mistakes, not
/// regressions.
pub fn compare(old: &Value, new: &Value, cfg: &CompareConfig) -> Result<CompareReport, String> {
    let bench_of = |v: &Value, which: &str| -> Result<String, String> {
        Ok(v.get("bench")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{which}: no \"bench\" name"))?
            .to_string())
    };
    let old_bench = bench_of(old, "old report")?;
    let new_bench = bench_of(new, "new report")?;
    if old_bench != new_bench {
        return Err(format!(
            "bench mismatch: old is \"{old_bench}\", new is \"{new_bench}\""
        ));
    }
    let rows_of = |v: &Value, which: &str| -> Result<Vec<Value>, String> {
        Ok(v.get("rows")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{which}: no \"rows\" array"))?
            .clone())
    };
    let old_rows = rows_of(old, "old report")?;
    let new_rows = rows_of(new, "new report")?;
    let provisional = [old, new]
        .iter()
        .any(|v| v.get("provisional").and_then(Value::as_bool) == Some(true));

    let new_by_key: BTreeMap<String, &Value> = new_rows.iter().map(|r| (row_key(r), r)).collect();
    let mut seen: Vec<String> = Vec::new();
    let mut report = CompareReport {
        bench: old_bench,
        provisional,
        ..CompareReport::default()
    };
    for old_row in &old_rows {
        let key = row_key(old_row);
        seen.push(key.clone());
        let Some(new_row) = new_by_key.get(&key) else {
            report.missing_rows.push(key);
            continue;
        };
        let Some(fields) = old_row.as_object() else {
            continue;
        };
        for (name, old_v) in fields {
            let gates = higher_better(name);
            let kind_is_metric = gates.is_some();
            if !kind_is_metric {
                continue;
            }
            let (Some(old_f), Some(new_f)) =
                (old_v.as_f64(), new_row.get(name).and_then(Value::as_f64))
            else {
                continue;
            };
            // old == 0 has no ratio: record, never gate (a genuinely
            // zero baseline — e.g. a stall histogram that never fired —
            // is a noise floor, not a budget).
            let regressed = old_f != 0.0
                && match gates {
                    Some(true) => new_f < cfg.floor * old_f,
                    Some(false) => new_f > cfg.ceiling * old_f,
                    None => false,
                };
            report.deltas.push(Delta {
                key: key.clone(),
                metric: name.to_string(),
                old: old_f,
                new: new_f,
                regressed,
                gated: old_f != 0.0,
            });
        }
    }
    for key in new_by_key.keys() {
        if !seen.contains(key) {
            report.added_rows.push(key.clone());
        }
    }
    Ok(report)
}

/// Render the comparison as a human diff table plus verdict lines.
/// Returns a string so callers can route it (stdout, tests, CI
/// annotations).
pub fn render(report: &CompareReport, cfg: &CompareConfig) -> String {
    let mut s = String::new();
    {
        use std::fmt::Write;
        let _ = writeln!(s, "bench: {}", report.bench);
        let _ = writeln!(
            s,
            "bands: higher-better floor {:.2}x, lower-better ceiling {:.2}x",
            cfg.floor, cfg.ceiling
        );
        if report.provisional {
            let _ = writeln!(
                s,
                "note: provisional baseline — value drift reported, not gated"
            );
        }
        for d in &report.deltas {
            let status = if d.regressed {
                if report.provisional {
                    "drift"
                } else {
                    "REGRESSED"
                }
            } else {
                "ok"
            };
            let _ = writeln!(
                s,
                "  {:<40} {:<22} {:>14.0} -> {:>14.0}  {:>+7.1}%  {}",
                d.key,
                d.metric,
                d.old,
                d.new,
                d.pct(),
                status
            );
        }
        for k in &report.missing_rows {
            let _ = writeln!(s, "  MISSING in new report: {k}");
        }
        for k in &report.added_rows {
            let _ = writeln!(s, "  added in new report: {k}");
        }
        let _ = writeln!(
            s,
            "verdict: {}",
            if report.passed() { "PASS" } else { "FAIL" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn base() -> Value {
        json!({
            "bench": "batch_sweep",
            "rows": [
                { "protocol": "Neo-HM", "batch": 1,
                  "ops_per_sec": 100000.0, "p50_ns": 200000, "p99_ns": 400000, "committed": 20000 },
                { "protocol": "Neo-HM", "batch": 16,
                  "ops_per_sec": 800000.0, "p50_ns": 300000, "p99_ns": 500000, "committed": 160000 }
            ]
        })
    }

    #[test]
    fn identical_reports_pass() {
        let cfg = CompareConfig::default();
        let report = compare(&base(), &base(), &cfg).expect("compares");
        assert!(report.passed(), "{report:?}");
        assert!(report.regressions().is_empty());
        assert!(report.missing_rows.is_empty());
        assert!(render(&report, &cfg).contains("verdict: PASS"));
    }

    #[test]
    fn throughput_drop_beyond_floor_fails() {
        let mut new = base();
        // −25% ops on the batch=16 row: below the 0.8 floor.
        new["rows"][1]["ops_per_sec"] = json!(600000.0);
        let cfg = CompareConfig::default();
        let report = compare(&base(), &new, &cfg).expect("compares");
        assert!(!report.passed());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "ops_per_sec");
        assert!(regs[0].key.contains("batch=16"), "{}", regs[0].key);
        assert!(render(&report, &cfg).contains("REGRESSED"));
    }

    #[test]
    fn latency_inflation_beyond_ceiling_fails() {
        let mut new = base();
        // +30% p99 on the batch=1 row: above the 1.25 ceiling.
        new["rows"][0]["p99_ns"] = json!(520000);
        let report = compare(&base(), &new, &CompareConfig::default()).expect("compares");
        assert!(!report.passed());
        assert_eq!(report.regressions()[0].metric, "p99_ns");
    }

    #[test]
    fn drift_within_bands_passes() {
        let mut new = base();
        new["rows"][0]["ops_per_sec"] = json!(85000.0); // −15%: inside 0.8
        new["rows"][1]["p99_ns"] = json!(600000); // +20%: inside 1.25
        let report = compare(&base(), &new, &CompareConfig::default()).expect("compares");
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn provisional_baseline_degrades_regressions_to_warnings() {
        let mut old = base();
        old["provisional"] = json!(true);
        let mut new = base();
        new["rows"][1]["ops_per_sec"] = json!(100000.0); // −87%
        let cfg = CompareConfig::default();
        let report = compare(&old, &new, &cfg).expect("compares");
        assert!(report.provisional);
        assert_eq!(report.regressions().len(), 1, "drift is still reported");
        assert!(report.passed(), "but does not gate");
        assert!(render(&report, &cfg).contains("provisional"));
    }

    #[test]
    fn missing_rows_fail_even_when_provisional() {
        let mut old = base();
        old["provisional"] = json!(true);
        let mut new = old.clone();
        new["rows"].as_array_mut().unwrap().pop();
        let report = compare(&old, &new, &CompareConfig::default()).expect("compares");
        assert_eq!(report.missing_rows, vec!["protocol=\"Neo-HM\" batch=16"]);
        assert!(!report.passed());
    }

    #[test]
    fn added_rows_are_informational() {
        let mut new = base();
        new["rows"].as_array_mut().unwrap().push(json!(
            { "protocol": "Neo-HM", "batch": 64,
              "ops_per_sec": 1000000.0, "p50_ns": 600000, "p99_ns": 900000, "committed": 200000 }
        ));
        let report = compare(&base(), &new, &CompareConfig::default()).expect("compares");
        assert!(report.passed());
        assert_eq!(report.added_rows.len(), 1);
    }

    #[test]
    fn zero_baselines_never_gate() {
        let old = json!({
            "bench": "verify_sweep",
            "rows": [{ "mode": "serial", "workers": 1, "batch": 1,
                       "ops_per_sec": 5000.0, "reorder_stall_p99_ns": 0 }]
        });
        let mut new = old.clone();
        new["rows"][0]["reorder_stall_p99_ns"] = json!(14000);
        let report = compare(&old, &new, &CompareConfig::default()).expect("compares");
        assert!(report.passed(), "0 → 14000 has no ratio to gate on");
    }

    #[test]
    fn bench_mismatch_is_an_error() {
        let mut new = base();
        new["bench"] = json!("verify_sweep");
        let err = compare(&base(), &new, &CompareConfig::default()).unwrap_err();
        assert!(err.contains("bench mismatch"), "{err}");
    }

    #[test]
    fn committed_reports_compare_clean_against_themselves() {
        // The repo's own BENCH trajectory must satisfy the gate's
        // identity property (this is what CI runs on every push).
        for name in ["BENCH_0006.json", "BENCH_0007.json"] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(name);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let v: Value = serde_json::from_str(&text).expect("valid report JSON");
            let report = compare(&v, &v, &CompareConfig::default()).expect("compares");
            assert!(report.passed(), "{name} vs itself must pass");
            assert!(!report.deltas.is_empty(), "{name} has gated metrics");
        }
    }
}
