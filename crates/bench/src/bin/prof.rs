//! Micro-profiling toolbox: `prof [crypto|sim|handlers|costs]`.
//!
//! - `crypto`   — time the suspected hot crypto operations (default)
//! - `sim`      — time the raw simulator event loop with trivial nodes
//! - `handlers` — time individual protocol handlers outside the simulator
//! - `costs`    — PBFT throughput under cost-model / CPU-model variants

fn main() {
    match std::env::args().nth(1).as_deref().unwrap_or("crypto") {
        "crypto" => crypto::run(),
        "sim" => sim_loop::run(),
        "handlers" => handlers::run(),
        "costs" => costs::run(),
        other => {
            eprintln!("unknown mode {other}; expected crypto|sim|handlers|costs");
            std::process::exit(2);
        }
    }
}

mod crypto {
    use neo_crypto::*;
    use neo_wire::*;
    use std::time::Instant;

    fn u64_noop(_x: u64) {}

    pub fn run() {
        let sys = SystemKeys::new(1, 4, 8);
        let nc = NodeCrypto::new(Principal::Replica(ReplicaId(0)), &sys, CostModel::FREE);
        let n = 100_000;

        let t = Instant::now();
        for i in 0..n {
            u64_noop(i);
        }
        println!("baseline loop: {:?}", t.elapsed());

        let t = Instant::now();
        for _ in 0..n {
            let _ = nc.mac_for(Principal::Client(ClientId(1)), b"hello world input");
        }
        println!(
            "mac_for (incl. key derivation): {:?} ({:.0}ns/op)",
            t.elapsed(),
            t.elapsed().as_nanos() as f64 / n as f64
        );

        let t = Instant::now();
        for _ in 0..n {
            let _ = sha256(b"some payload of modest size 64 bytes long ............ .......");
        }
        println!(
            "sha256: {:?} ({:.0}ns/op)",
            t.elapsed(),
            t.elapsed().as_nanos() as f64 / n as f64
        );

        let t = Instant::now();
        for _ in 0..n {
            let _ = NodeCrypto::new(Principal::Replica(ReplicaId(0)), &sys, CostModel::FREE);
        }
        println!(
            "NodeCrypto::new: {:?} ({:.0}ns/op)",
            t.elapsed(),
            t.elapsed().as_nanos() as f64 / n as f64
        );
    }
}

mod sim_loop {
    use neo_sim::*;
    use neo_wire::{Addr, ReplicaId};
    use std::any::Any;
    use std::time::Instant;

    struct Echo;
    impl Node for Echo {
        fn on_message(&mut self, from: Addr, payload: &[u8], ctx: &mut dyn Context) {
            if payload[0] > 0 {
                let mut p = payload.to_vec();
                p[0] -= 1;
                ctx.send(from, p.into());
            }
        }
        fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    pub fn run() {
        let mut sim = Simulator::new(SimConfig {
            net: NetConfig::DATACENTER,
            default_cpu: CpuConfig::SERVER,
            seed: 1,
            faults: FaultPlan::none(),
        });
        let a = Addr::Replica(ReplicaId(0));
        let b = Addr::Replica(ReplicaId(1));
        sim.add_node(a, Box::new(Echo));
        sim.add_node(b, Box::new(Echo));
        for i in 0..50 {
            sim.post(a, b, vec![255u8; 64], i);
        }
        let t = Instant::now();
        let n = sim.run_until(u64::MAX / 2);
        println!(
            "{} events in {:?} ({:.0}ns/event)",
            n,
            t.elapsed(),
            t.elapsed().as_nanos() as f64 / n as f64
        );
    }
}

mod handlers {
    use neo_aom::*;
    use neo_app::*;
    use neo_core::*;
    use neo_crypto::*;
    use neo_sim::{Context, Node, TimerId};
    use neo_wire::*;
    use std::time::Instant;

    struct Sink {
        sends: Vec<(Addr, Payload)>,
    }
    impl Context for Sink {
        fn now(&self) -> u64 {
            0
        }
        fn me(&self) -> Addr {
            Addr::Replica(ReplicaId(0))
        }
        fn send_after(&mut self, to: Addr, p: Payload, _: u64) {
            self.sends.push((to, p));
        }
        fn set_timer(&mut self, _: u64, _: u32) -> TimerId {
            TimerId(9)
        }
        fn cancel_timer(&mut self, _: TimerId) {}
        fn charge(&mut self, _: u64) {}
    }

    pub fn run() {
        let cfg = NeoConfig::new(1);
        let keys = SystemKeys::new(1, 4, 4);
        let t = Instant::now();
        let mut replica = Replica::new(
            ReplicaId(0),
            cfg.clone(),
            &keys,
            CostModel::CALIBRATED,
            Box::new(EchoApp::new()),
        );
        println!("Replica::new: {:?}", t.elapsed());

        let t = Instant::now();
        let mut seq = SequencerNode::new(
            GroupId(0),
            (0..4).map(ReplicaId).collect(),
            AuthMode::HmacVector,
            SequencerHw::Software(CostModel::FREE),
            &keys,
        );
        println!("Sequencer::new: {:?}", t.elapsed());

        let t = Instant::now();
        let mut client = Client::new(
            ClientId(0),
            cfg.clone(),
            &keys,
            CostModel::CALIBRATED,
            Box::new(EchoWorkload::new(64, 1)),
        );
        println!("Client::new: {:?}", t.elapsed());

        // Drive: client issues request via init timer
        let n = 20_000u64;
        let mut ctx = Sink { sends: vec![] };
        client.on_timer(TimerId(0), 0, &mut ctx);
        let req_bytes = ctx.sends[0].1.clone();

        // sequencer handler timing
        let mut sctx = Sink { sends: vec![] };
        let t = Instant::now();
        for _ in 0..n {
            seq.on_message(Addr::Client(ClientId(0)), &req_bytes, &mut sctx);
        }
        println!(
            "sequencer.on_message: {:.0}ns/op",
            t.elapsed().as_nanos() as f64 / n as f64
        );

        // replica handler timing: feed successive stamped packets
        let pkts: Vec<Payload> = sctx
            .sends
            .iter()
            .filter(|(a, _)| *a == Addr::Replica(ReplicaId(0)))
            .map(|(_, p)| p.clone())
            .collect();
        let mut rctx = Sink { sends: vec![] };
        let t = Instant::now();
        for p in &pkts {
            replica.on_message(Addr::Sequencer(GroupId(0)), p, &mut rctx);
        }
        println!(
            "replica.on_message(aom pkt): {:.0}ns/op over {} pkts, {} replies",
            t.elapsed().as_nanos() as f64 / pkts.len() as f64,
            pkts.len(),
            rctx.sends.len()
        );

        // client reply handling
        let reply = rctx.sends[0].1.clone();
        let mut cctx = Sink { sends: vec![] };
        let t = Instant::now();
        for _ in 0..n {
            client.on_message(Addr::Replica(ReplicaId(0)), &reply, &mut cctx);
        }
        println!(
            "client.on_message(reply): {:.0}ns/op",
            t.elapsed().as_nanos() as f64 / n as f64
        );
    }
}

mod costs {
    use neo_bench::harness::*;
    use neo_crypto::CostModel;
    use neo_sim::CpuConfig;

    pub fn run() {
        for (label, costs, cpu) in [
            ("calibrated", CostModel::CALIBRATED, CpuConfig::SERVER),
            ("free-costs", CostModel::FREE, CpuConfig::SERVER),
            ("ideal-cpu", CostModel::CALIBRATED, CpuConfig::IDEAL),
            ("all-free", CostModel::FREE, CpuConfig::IDEAL),
        ] {
            let mut p = RunParams::new(Protocol::Pbft, 64);
            p.warmup = 20_000_000;
            p.measure = 100_000_000;
            p.costs = costs;
            p.server_cpu = cpu;
            p.client_cpu = cpu;
            let r = run_experiment(&p);
            println!(
                "PBFT {label}: {:.1}K ops/s mean {:.1}us",
                r.throughput / 1e3,
                r.mean_latency_ns as f64 / 1e3
            );
        }
    }
}
