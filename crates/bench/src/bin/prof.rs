//! Micro-profiling: time the suspected hot operations.
use neo_crypto::*;
use neo_wire::*;
use std::time::Instant;

fn main() {
    let sys = SystemKeys::new(1, 4, 8);
    let nc = NodeCrypto::new(Principal::Replica(ReplicaId(0)), &sys, CostModel::FREE);
    let n = 100_000;

    let t = Instant::now();
    for i in 0..n {
        u64_noop(i);
    }
    println!("baseline loop: {:?}", t.elapsed());

    let t = Instant::now();
    for _ in 0..n {
        let _ = nc.mac_for(Principal::Client(ClientId(1)), b"hello world input");
    }
    println!(
        "mac_for (incl. key derivation): {:?} ({:.0}ns/op)",
        t.elapsed(),
        t.elapsed().as_nanos() as f64 / n as f64
    );

    let t = Instant::now();
    for _ in 0..n {
        let _ = sha256(b"some payload of modest size 64 bytes long ............ .......");
    }
    println!(
        "sha256: {:?} ({:.0}ns/op)",
        t.elapsed(),
        t.elapsed().as_nanos() as f64 / n as f64
    );

    let t = Instant::now();
    for _ in 0..n {
        let _ = NodeCrypto::new(Principal::Replica(ReplicaId(0)), &sys, CostModel::FREE);
    }
    println!(
        "NodeCrypto::new: {:?} ({:.0}ns/op)",
        t.elapsed(),
        t.elapsed().as_nanos() as f64 / n as f64
    );
}
fn u64_noop(_x: u64) {}
