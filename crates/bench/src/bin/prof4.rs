use neo_bench::harness::*;
use neo_crypto::CostModel;
use neo_sim::CpuConfig;
fn main() {
    for (label, costs, cpu) in [
        ("calibrated", CostModel::CALIBRATED, CpuConfig::SERVER),
        ("free-costs", CostModel::FREE, CpuConfig::SERVER),
        ("ideal-cpu", CostModel::CALIBRATED, CpuConfig::IDEAL),
        ("all-free", CostModel::FREE, CpuConfig::IDEAL),
    ] {
        let mut p = RunParams::new(Protocol::Pbft, 64);
        p.warmup = 20_000_000;
        p.measure = 100_000_000;
        p.costs = costs;
        p.server_cpu = cpu;
        p.client_cpu = cpu;
        let r = run_experiment(&p);
        println!(
            "PBFT {label}: {:.1}K ops/s mean {:.1}us",
            r.throughput / 1e3,
            r.mean_latency_ns as f64 / 1e3
        );
    }
}
