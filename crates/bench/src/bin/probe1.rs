use neo_bench::harness::*;
use std::time::Instant;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let proto = match args.get(1).map(|s| s.as_str()).unwrap_or("neohm") {
        "neohm" => Protocol::NeoHm,
        "neopk" => Protocol::NeoPk,
        "neobn" => Protocol::NeoBn,
        "pbft" => Protocol::Pbft,
        "zyz" => Protocol::Zyzzyva,
        "zyzf" => Protocol::ZyzzyvaF,
        "hs" => Protocol::HotStuff,
        "minbft" => Protocol::MinBft,
        "unrep" => Protocol::Unreplicated,
        "neohmsw" => Protocol::NeoHmSoftware,
        "neopksw" => Protocol::NeoPkSoftware,
        other => panic!("unknown {other}"),
    };
    let c: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(1);
    let ms: u64 = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(100);
    let mut p = RunParams::new(proto, c);
    p.warmup = 20 * 1_000_000;
    p.measure = ms * 1_000_000;
    let t = Instant::now();
    let r = run_experiment(&p);
    println!(
        "{} c={} -> {:.1}K ops/s, mean {:.1}us p50 {:.1}us p99 {:.1}us ({} ops) [wall {:?}]",
        proto.label(),
        c,
        r.throughput / 1e3,
        r.mean_latency_ns as f64 / 1e3,
        r.p50_latency_ns as f64 / 1e3,
        r.p99_latency_ns as f64 / 1e3,
        r.committed,
        t.elapsed()
    );
}
