//! Seed-sweeping chaos explorer.
//!
//! - `chaos` — sweep the default 50 seeds (0..50).
//! - `chaos --seeds N [--start S]` — sweep N seeds from S.
//! - `chaos --seed X` — one seed, verbose (prints the full plan and the
//!   PBFT control), for reproducing a reported violation.
//! - `chaos --plan '<json>'` — re-run an exact serialized plan from a
//!   violation report, bypassing the generator.
//!
//! Exit status is non-zero iff any run violated a safety invariant.

use neo_bench::chaos::{
    generate_plan, run_neo, run_pbft_control, summary_line, violation_report, ChaosPlan,
};

fn get<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a.as_str() == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse(args: &[String], flag: &str, default: u64) -> u64 {
    match get(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| panic!("bad {flag}: {v}")),
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(json) = get(&args, "--plan") {
        let plan: ChaosPlan = serde_json::from_str(json).expect("invalid plan JSON");
        std::process::exit(run_one(&plan));
    }
    if get(&args, "--seed").is_some() {
        let plan = generate_plan(parse(&args, "--seed", 0));
        std::process::exit(run_one(&plan));
    }

    let start = parse(&args, "--start", 0);
    let count = parse(&args, "--seeds", 50);
    let mut failed = 0;
    for seed in start..start + count {
        let plan = generate_plan(seed);
        let outcome = run_neo(&plan);
        println!("{}", summary_line(&outcome));
        if !outcome.violations.is_empty() {
            eprint!("{}", violation_report(&outcome));
            failed += 1;
        }
    }
    println!("chaos: {count} seeds swept, {failed} violation(s)");
    std::process::exit(if failed == 0 { 0 } else { 1 });
}

/// Run one scenario verbosely: print the plan, the NeoBFT outcome, and
/// the PBFT control. Returns the process exit code.
fn run_one(plan: &ChaosPlan) -> i32 {
    println!(
        "plan: {}",
        serde_json::to_string_pretty(plan).expect("plan serializes")
    );
    let outcome = run_neo(plan);
    println!("{}", summary_line(&outcome));
    let (control_committed, control_anomalies) = run_pbft_control(plan);
    println!("pbft control: committed {control_committed}");
    for a in &control_anomalies {
        eprintln!("  {a}");
    }
    if outcome.violations.is_empty() && control_anomalies.is_empty() {
        0
    } else {
        eprint!("{}", violation_report(&outcome));
        1
    }
}
