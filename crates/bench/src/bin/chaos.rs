//! Seed-sweeping chaos explorer.
//!
//! - `chaos` — sweep the default 50 seeds (0..50).
//! - `chaos --seeds N [--start S]` — sweep N seeds from S.
//! - `chaos --seed X` — one seed, verbose (prints the full plan and the
//!   PBFT control), for reproducing a reported violation.
//! - `chaos --plan '<json>'` — re-run an exact serialized plan from a
//!   violation report, bypassing the generator.
//! - `--obs-out <path>` — append live `ObsStreamLine` JSONL (one line
//!   per node per slice boundary) to `path`.
//! - `--telemetry-addr <addr>` — serve `GET /metrics` (Prometheus) and
//!   `GET /health` (JSON) on `addr` (e.g. `127.0.0.1:9464`), refreshed
//!   at every slice boundary while the sweep runs.
//! - `--flight-dir <dir>` — where flight-recorder dumps are written
//!   (default `$NEO_FLIGHT_DIR`, falling back to `target/flight`).
//!
//! A safety violation or a SIGINT mid-run writes the cluster's flight
//! recorder to `<flight-dir>/flight-seed-<seed>.json`; `neo-trace`
//! renders it. Exit status is non-zero iff any run violated a safety
//! invariant (130 on interrupt).

use neo_bench::chaos::{
    generate_plan, run_neo_with, run_pbft_control, summary_line, violation_report, ChaosOutcome,
    ChaosPlan, RunHooks,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn get<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a.as_str() == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse(args: &[String], flag: &str, default: u64) -> u64 {
    match get(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| panic!("bad {flag}: {v}")),
        None => default,
    }
}

/// Flight-dump directory: flag, then env, then `target/flight`.
fn flight_dir(args: &[String]) -> PathBuf {
    get(args, "--flight-dir")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("NEO_FLIGHT_DIR").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("target/flight"))
}

/// Write the outcome's flight dump (if any) as a JSON artifact.
fn write_flight(dir: &Path, outcome: &ChaosOutcome) {
    let Some(flight) = &outcome.flight else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("chaos: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("flight-seed-{}.json", outcome.plan.seed));
    match serde_json::to_vec_pretty(flight) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("chaos: flight recorder written to {}", path.display()),
            Err(e) => eprintln!("chaos: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("chaos: cannot serialize flight dump: {e}"),
    }
}

/// Arm a process-wide SIGINT watcher: the first ctrl-C sets the flag so
/// runs can stop at a slice boundary and dump their rings; a second
/// ctrl-C kills the process the default way.
fn arm_sigint() -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    let seen = flag.clone();
    std::thread::spawn(move || {
        let rt = match tokio::runtime::Builder::new_current_thread()
            .enable_all()
            .build()
        {
            Ok(rt) => rt,
            Err(_) => return, // no watcher: ctrl-C keeps its default meaning
        };
        rt.block_on(async {
            if tokio::signal::ctrl_c().await.is_ok() {
                seen.store(true, Ordering::Relaxed);
                eprintln!("chaos: interrupt — dumping flight recorder at next slice boundary");
            }
            // Second ctrl-C: restore immediate termination.
            if tokio::signal::ctrl_c().await.is_ok() {
                std::process::exit(130);
            }
        });
    });
    flag
}

/// Start the scrape endpoint if `--telemetry-addr` was given. Returns
/// the hub (publish target) and the server handle keeping it served.
fn telemetry(args: &[String]) -> Option<(Arc<neo_sim::TelemetryHub>, neo_sim::TelemetryServer)> {
    let addr = get(args, "--telemetry-addr")?;
    let hub = Arc::new(neo_sim::TelemetryHub::new());
    match neo_sim::TelemetryServer::start(addr, hub.clone()) {
        Ok(server) => {
            eprintln!(
                "chaos: telemetry on http://{}/metrics and /health",
                server.local_addr()
            );
            Some((hub, server))
        }
        Err(e) => {
            eprintln!("chaos: cannot bind --telemetry-addr {addr}: {e}");
            None
        }
    }
}

fn obs_writer(args: &[String]) -> Option<std::io::BufWriter<std::fs::File>> {
    let path = get(args, "--obs-out")?;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(f) => Some(std::io::BufWriter::new(f)),
        Err(e) => {
            eprintln!("chaos: cannot open --obs-out {path}: {e}");
            None
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stop = arm_sigint();
    let dir = flight_dir(&args);
    let mut obs = obs_writer(&args);
    let telemetry = telemetry(&args);
    let hub = telemetry.as_ref().map(|(h, _)| h.as_ref());

    if let Some(json) = get(&args, "--plan") {
        let plan: ChaosPlan = serde_json::from_str(json).expect("invalid plan JSON");
        std::process::exit(run_one(&plan, &dir, &stop, &mut obs, hub));
    }
    if get(&args, "--seed").is_some() {
        let plan = generate_plan(parse(&args, "--seed", 0));
        std::process::exit(run_one(&plan, &dir, &stop, &mut obs, hub));
    }

    let start = parse(&args, "--start", 0);
    let count = parse(&args, "--seeds", 50);
    let mut failed = 0;
    let mut swept = 0;
    for seed in start..start + count {
        let plan = generate_plan(seed);
        let mut hooks = RunHooks {
            stop: Some(&stop),
            obs_out: obs.as_mut().map(|w| w as &mut dyn Write),
            telemetry: hub,
            ..RunHooks::default()
        };
        let outcome = run_neo_with(&plan, &mut hooks);
        println!("{}", summary_line(&outcome));
        swept += 1;
        if !outcome.violations.is_empty() {
            eprint!("{}", violation_report(&outcome));
            failed += 1;
        }
        write_flight(&dir, &outcome);
        if stop.load(Ordering::Relaxed) {
            eprintln!("chaos: interrupted after {swept} seed(s)");
            std::process::exit(130);
        }
    }
    println!("chaos: {swept} seeds swept, {failed} violation(s)");
    std::process::exit(if failed == 0 { 0 } else { 1 });
}

/// Run one scenario verbosely: print the plan, the NeoBFT outcome, and
/// the PBFT control. Returns the process exit code.
fn run_one(
    plan: &ChaosPlan,
    dir: &Path,
    stop: &AtomicBool,
    obs: &mut Option<std::io::BufWriter<std::fs::File>>,
    hub: Option<&neo_sim::TelemetryHub>,
) -> i32 {
    println!(
        "plan: {}",
        serde_json::to_string_pretty(plan).expect("plan serializes")
    );
    let mut hooks = RunHooks {
        stop: Some(stop),
        obs_out: obs.as_mut().map(|w| w as &mut dyn Write),
        telemetry: hub,
        ..RunHooks::default()
    };
    let outcome = run_neo_with(plan, &mut hooks);
    println!("{}", summary_line(&outcome));
    write_flight(dir, &outcome);
    if stop.load(Ordering::Relaxed) {
        return 130;
    }
    let (control_committed, control_anomalies) = run_pbft_control(plan);
    println!("pbft control: committed {control_committed}");
    for a in &control_anomalies {
        eprintln!("  {a}");
    }
    if outcome.violations.is_empty() && control_anomalies.is_empty() {
        0
    } else {
        eprint!("{}", violation_report(&outcome));
        1
    }
}
