//! Verify-stage worker sweep (the `BENCH_0007.json` report): throughput
//! and latency of serial versus pooled authenticator verification over
//! worker counts {1, 2, 4, 8} at client batch sizes {1, 16, 64},
//! extending the batching trajectory started by `BENCH_0006.json`.
//!
//! The protocol under test is Neo-BN (aom-hm tolerating a Byzantine
//! network): its per-slot confirm signatures make replica-side
//! verification the dominant dispatch cost, which is exactly the work
//! the [`neo_crypto::VerifyPool`] moves off the critical path. The
//! simulator models the pool with the meter — serial mode charges every
//! verify on the dispatch core, pooled mode records each verification
//! as a parallel task spread over `w` modeled worker cores — so the
//! sweep is deterministic and runs in virtual time.
//!
//! - `verify_sweep [out.json]` — run the sweep and write the report
//!   (default `BENCH_0007.json` in the working directory). Prints the
//!   aggregate phase-breakdown table (including `verify.batch_size`
//!   and `verify.reorder_stall_ns`) for the headline configuration.
//! - `verify_sweep --check <report.json>` — re-run at the report's
//!   recorded windows and exit non-zero on a >20% ops/s regression
//!   against any non-provisional row. Always asserts the headline
//!   pooled speedup on the fresh numbers: 4 workers at batch 16 must
//!   deliver at least 2x the ops/s of the serial lane at batch 16.
//!
//! A report written with `"provisional": true` carries modeled numbers
//! (committed so the acceptance shape exists before a calibrated run);
//! the regression gate skips value comparison for provisional reports
//! and only enforces the speedup ratio on the fresh measurement.

use neo_bench::harness::{CopyReport, Protocol, RunConfig, RunResult};
use neo_bench::report::phase_breakdown;
use neo_bench::trace::TraceReport;
use neo_core::BatchPolicy;
use neo_sim::MILLIS;
use serde::{Deserialize, Serialize};

/// Verify-worker counts on the sweep's x-axis (pooled lane).
const WORKERS: [usize; 4] = [1, 2, 4, 8];
/// Client batch sizes swept for each lane.
const BATCHES: [usize; 3] = [1, 16, 64];
/// Regression tolerance for `--check`: fail below 80% of recorded.
const REGRESSION_FLOOR: f64 = 0.8;
/// Required pooled (4 workers) speedup over serial at batch 16.
const SPEEDUP_FLOOR: f64 = 2.0;
/// The headline configuration: 4 workers, batch 16.
const HEADLINE_WORKERS: usize = 4;
const HEADLINE_BATCH: usize = 16;

#[derive(Clone, Serialize, Deserialize)]
struct SweepConfig {
    clients: usize,
    warmup_ns: u64,
    measure_ns: u64,
    seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        // 64 closed-loop clients keep the f = 1 Neo-BN cluster's
        // dispatch core saturated in serial mode, so the sweep measures
        // verification capacity rather than offered load.
        SweepConfig {
            clients: 64,
            warmup_ns: 50 * MILLIS,
            measure_ns: 200 * MILLIS,
            seed: 42,
        }
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct Row {
    /// "serial" or "pooled".
    mode: String,
    /// Modeled verify workers (1 for the serial lane's dispatch core).
    workers: usize,
    batch: usize,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    committed: u64,
    /// Median verify batch size observed at the dispatch stage.
    #[serde(default)]
    verify_batch_p50: u64,
    /// p99 reorder-buffer stall while re-injecting completions in order.
    #[serde(default)]
    reorder_stall_p99_ns: u64,
    /// Payload copy/allocation accounting over the window.
    #[serde(default, skip_deserializing)]
    copy: Option<CopyReport>,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    #[serde(default)]
    provisional: bool,
    #[serde(default)]
    note: String,
    config: SweepConfig,
    rows: Vec<Row>,
    /// Per-phase latency waterfall (send → stamp → deliver → exec →
    /// reply → commit) for the headline configuration.
    #[serde(default, skip_deserializing)]
    waterfall: Option<TraceReport>,
}

fn policy(batch: usize) -> BatchPolicy {
    if batch <= 1 {
        BatchPolicy::SINGLE
    } else {
        BatchPolicy::fixed(batch)
    }
}

/// One measured run: serial lane when `workers` is `None`, pooled lane
/// with `w` modeled workers otherwise.
fn run_one(cfg: &SweepConfig, workers: Option<usize>, batch: usize) -> RunResult {
    let mut run = RunConfig::new(Protocol::NeoBn)
        .clients(cfg.clients)
        .seed(cfg.seed)
        .window(cfg.warmup_ns, cfg.measure_ns)
        .batch(policy(batch));
    run = match workers {
        Some(w) => run.verify_workers(w),
        None => run.serial_verify(),
    };
    run.run()
}

fn row_from(mode: &str, workers: usize, batch: usize, r: &RunResult) -> Row {
    let hists = &r.obs.aggregate.histograms;
    let row = Row {
        mode: mode.to_string(),
        workers,
        batch,
        ops_per_sec: r.throughput,
        p50_ns: r.p50_latency_ns,
        p99_ns: r.p99_latency_ns,
        committed: r.committed,
        verify_batch_p50: hists.get("verify.batch_size").map(|h| h.p50).unwrap_or(0),
        reorder_stall_p99_ns: hists
            .get("verify.reorder_stall_ns")
            .map(|h| h.p99)
            .unwrap_or(0),
        copy: Some(r.copy),
    };
    eprintln!(
        "{:>6} w{} batch {:>2}: {:>9.1} ops/s  p50 {:>7.1}us  p99 {:>7.1}us  ({} ops, stall p99 {}ns)",
        mode,
        workers,
        batch,
        r.throughput,
        r.p50_latency_ns as f64 / 1e3,
        r.p99_latency_ns as f64 / 1e3,
        r.committed,
        row.reorder_stall_p99_ns,
    );
    row
}

fn sweep(cfg: &SweepConfig) -> (Vec<Row>, Option<TraceReport>) {
    let mut rows = Vec::new();
    let mut waterfall = None;
    for batch in BATCHES {
        let r = run_one(cfg, None, batch);
        rows.push(row_from("serial", 1, batch, &r));
    }
    for w in WORKERS {
        for batch in BATCHES {
            let r = run_one(cfg, Some(w), batch);
            if w == HEADLINE_WORKERS && batch == HEADLINE_BATCH {
                phase_breakdown(
                    &format!("Neo-BN pooled w{w} batch {batch} aggregate"),
                    &r.obs.aggregate,
                )
                .print();
                waterfall = r.trace.clone();
            }
            rows.push(row_from("pooled", w, batch, &r));
        }
    }
    (rows, waterfall)
}

fn ops(rows: &[Row], mode: &str, workers: usize, batch: usize) -> Option<f64> {
    rows.iter()
        .find(|r| r.mode == mode && r.workers == workers && r.batch == batch)
        .map(|r| r.ops_per_sec)
}

/// The headline ratio: pooled 4 workers over serial, both at batch 16.
fn speedup(rows: &[Row]) -> Option<f64> {
    let base = ops(rows, "serial", 1, HEADLINE_BATCH)?;
    let pooled = ops(rows, "pooled", HEADLINE_WORKERS, HEADLINE_BATCH)?;
    (base > 0.0).then(|| pooled / base)
}

fn check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let report: Report =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    assert_eq!(report.bench, "verify_sweep", "wrong report kind");
    let recorded = speedup(&report.rows).expect("report has serial and pooled batch-16 rows");
    assert!(
        recorded >= SPEEDUP_FLOOR,
        "committed report's pooled speedup {recorded:.2}x is below {SPEEDUP_FLOOR}x"
    );
    let (fresh, _) = sweep(&report.config);
    let measured = speedup(&fresh).expect("sweep produced serial and pooled rows");
    assert!(
        measured >= SPEEDUP_FLOOR,
        "measured pooled speedup {measured:.2}x is below {SPEEDUP_FLOOR}x"
    );
    if report.provisional {
        println!(
            "check ok (provisional report: value gate skipped; measured speedup {measured:.2}x). \
             Regenerate with `cargo run --release -p neo-bench --bin verify_sweep` and commit."
        );
        return;
    }
    let mut failures = Vec::new();
    for row in &report.rows {
        let Some(now) = ops(&fresh, &row.mode, row.workers, row.batch) else {
            continue;
        };
        if now < row.ops_per_sec * REGRESSION_FLOOR {
            failures.push(format!(
                "{} w{} batch {}: {:.0} ops/s is a >20% regression from recorded {:.0}",
                row.mode, row.workers, row.batch, now, row.ops_per_sec
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    println!("check ok (measured speedup {measured:.2}x, no >20% ops/s regressions)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_0007.json");
        check(path);
        return;
    }
    let out = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_0007.json");
    let config = SweepConfig::default();
    let (rows, waterfall) = sweep(&config);
    let measured = speedup(&rows).expect("sweep produced serial and pooled rows");
    let report = Report {
        bench: "verify_sweep".into(),
        provisional: false,
        note: format!(
            "pooled (4 workers) speedup over serial at batch {HEADLINE_BATCH}: {measured:.2}x"
        ),
        config,
        rows,
        waterfall,
    };
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out} (speedup {measured:.2}x)");
    assert!(
        measured >= SPEEDUP_FLOOR,
        "pooled speedup {measured:.2}x is below the {SPEEDUP_FLOOR}x acceptance floor"
    );
}
