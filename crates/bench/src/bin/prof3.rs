//! Time individual protocol handlers outside the simulator.
use neo_aom::*;
use neo_app::*;
use neo_core::*;
use neo_crypto::*;
use neo_sim::{Context, Node, TimerId};
use neo_wire::*;
use std::time::Instant;

struct Sink {
    sends: Vec<(Addr, Vec<u8>)>,
}
impl Context for Sink {
    fn now(&self) -> u64 {
        0
    }
    fn me(&self) -> Addr {
        Addr::Replica(ReplicaId(0))
    }
    fn send_after(&mut self, to: Addr, p: Vec<u8>, _: u64) {
        self.sends.push((to, p));
    }
    fn set_timer(&mut self, _: u64, _: u32) -> TimerId {
        TimerId(9)
    }
    fn cancel_timer(&mut self, _: TimerId) {}
    fn charge(&mut self, _: u64) {}
}

fn main() {
    let cfg = NeoConfig::new(1);
    let keys = SystemKeys::new(1, 4, 4);
    let t = Instant::now();
    let mut replica = Replica::new(
        ReplicaId(0),
        cfg.clone(),
        &keys,
        CostModel::CALIBRATED,
        Box::new(EchoApp::new()),
    );
    println!("Replica::new: {:?}", t.elapsed());

    let t = Instant::now();
    let mut seq = SequencerNode::new(
        GroupId(0),
        (0..4).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    println!("Sequencer::new: {:?}", t.elapsed());

    let t = Instant::now();
    let mut client = Client::new(
        ClientId(0),
        cfg.clone(),
        &keys,
        CostModel::CALIBRATED,
        Box::new(EchoWorkload::new(64, 1)),
    );
    println!("Client::new: {:?}", t.elapsed());

    // Drive: client issues request via init timer
    let n = 20_000u64;
    let mut ctx = Sink { sends: vec![] };
    client.on_timer(TimerId(0), 0, &mut ctx);
    let req_bytes = ctx.sends[0].1.clone();

    // sequencer handler timing
    let mut sctx = Sink { sends: vec![] };
    let t = Instant::now();
    for _ in 0..n {
        seq.on_message(Addr::Client(ClientId(0)), &req_bytes, &mut sctx);
    }
    println!(
        "sequencer.on_message: {:.0}ns/op",
        t.elapsed().as_nanos() as f64 / n as f64
    );

    // replica handler timing: feed successive stamped packets
    let pkts: Vec<Vec<u8>> = sctx
        .sends
        .iter()
        .filter(|(a, _)| *a == Addr::Replica(ReplicaId(0)))
        .map(|(_, p)| p.clone())
        .collect();
    let mut rctx = Sink { sends: vec![] };
    let t = Instant::now();
    for p in &pkts {
        replica.on_message(Addr::Sequencer(GroupId(0)), p, &mut rctx);
    }
    println!(
        "replica.on_message(aom pkt): {:.0}ns/op over {} pkts, {} replies",
        t.elapsed().as_nanos() as f64 / pkts.len() as f64,
        pkts.len(),
        rctx.sends.len()
    );

    // client reply handling
    let reply = rctx.sends[0].1.clone();
    let mut cctx = Sink { sends: vec![] };
    let t = Instant::now();
    for _ in 0..n {
        client.on_message(Addr::Replica(ReplicaId(0)), &reply, &mut cctx);
    }
    println!(
        "client.on_message(reply): {:.0}ns/op",
        t.elapsed().as_nanos() as f64 / n as f64
    );
}
