//! Batch-size sweep (the `BENCH_0006.json` report): throughput and
//! latency versus the client batch size, NeoBFT (Neo-HM) against a
//! batched-PBFT control, under saturating closed-loop load.
//!
//! - `batch_sweep [out.json]` — run the full sweep and write the report
//!   (default `BENCH_0006.json` in the working directory).
//! - `batch_sweep --check <report.json>` — re-run the sweep at the
//!   report's recorded windows and exit non-zero on a >20% ops/s
//!   regression against any non-provisional row. Always asserts the
//!   headline batching speedup on the fresh numbers: Neo-HM at batch
//!   ≥ 16 must deliver at least 3x the ops/s of batch = 1.
//!
//! A report written with `"provisional": true` carries modeled numbers
//! (committed so the acceptance shape exists before a calibrated run);
//! the regression gate skips value comparison for provisional reports
//! and only enforces the speedup ratio on the fresh measurement.

use neo_bench::harness::{Protocol, RunConfig};
use neo_core::BatchPolicy;
use neo_sim::MILLIS;
use serde::{Deserialize, Serialize};

/// Batch sizes on the sweep's x-axis.
const BATCHES: [usize; 4] = [1, 4, 16, 64];
/// Protocol under test plus the batched classical control.
const PROTOCOLS: [Protocol; 2] = [Protocol::NeoHm, Protocol::Pbft];
/// Regression tolerance for `--check`: fail below 80% of recorded.
const REGRESSION_FLOOR: f64 = 0.8;
/// Required Neo-HM speedup of batch >= 16 over batch = 1.
const SPEEDUP_FLOOR: f64 = 3.0;

#[derive(Clone, Serialize, Deserialize)]
struct SweepConfig {
    clients: usize,
    warmup_ns: u64,
    measure_ns: u64,
    seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        // 32 closed-loop clients saturate the f = 1 cluster under the
        // calibrated cost model well before the largest batch size.
        SweepConfig {
            clients: 32,
            warmup_ns: 50 * MILLIS,
            measure_ns: 200 * MILLIS,
            seed: 42,
        }
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct Row {
    protocol: String,
    batch: usize,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    committed: u64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    #[serde(default)]
    provisional: bool,
    #[serde(default)]
    note: String,
    config: SweepConfig,
    rows: Vec<Row>,
}

fn policy(batch: usize) -> BatchPolicy {
    if batch <= 1 {
        BatchPolicy::SINGLE
    } else {
        BatchPolicy::fixed(batch)
    }
}

fn sweep(cfg: &SweepConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for proto in PROTOCOLS {
        for batch in BATCHES {
            let r = RunConfig::new(proto)
                .clients(cfg.clients)
                .seed(cfg.seed)
                .window(cfg.warmup_ns, cfg.measure_ns)
                .batch(policy(batch))
                .run();
            eprintln!(
                "{:>8} batch {:>2}: {:>9.1} ops/s  p50 {:>7.1}us  p99 {:>7.1}us  ({} ops)",
                proto.label(),
                batch,
                r.throughput,
                r.p50_latency_ns as f64 / 1e3,
                r.p99_latency_ns as f64 / 1e3,
                r.committed
            );
            rows.push(Row {
                protocol: proto.label().to_string(),
                batch,
                ops_per_sec: r.throughput,
                p50_ns: r.p50_latency_ns,
                p99_ns: r.p99_latency_ns,
                committed: r.committed,
            });
        }
    }
    rows
}

fn ops(rows: &[Row], protocol: &str, batch: usize) -> Option<f64> {
    rows.iter()
        .find(|r| r.protocol == protocol && r.batch == batch)
        .map(|r| r.ops_per_sec)
}

/// The headline ratio: best of Neo-HM batch 16/64 over batch 1.
fn speedup(rows: &[Row]) -> Option<f64> {
    let base = ops(rows, "Neo-HM", 1)?;
    let batched = ops(rows, "Neo-HM", 16)?.max(ops(rows, "Neo-HM", 64)?);
    (base > 0.0).then(|| batched / base)
}

fn check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let report: Report =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    assert_eq!(report.bench, "batch_sweep", "wrong report kind");
    let recorded = speedup(&report.rows).expect("report has Neo-HM batch 1/16/64 rows");
    assert!(
        recorded >= SPEEDUP_FLOOR,
        "committed report's Neo-HM speedup {recorded:.2}x is below {SPEEDUP_FLOOR}x"
    );
    let fresh = sweep(&report.config);
    let measured = speedup(&fresh).expect("sweep produced Neo-HM rows");
    assert!(
        measured >= SPEEDUP_FLOOR,
        "measured Neo-HM speedup {measured:.2}x is below {SPEEDUP_FLOOR}x"
    );
    if report.provisional {
        println!(
            "check ok (provisional report: value gate skipped; measured speedup {measured:.2}x). \
             Regenerate with `cargo run --release -p neo-bench --bin batch_sweep` and commit."
        );
        return;
    }
    let mut failures = Vec::new();
    for row in &report.rows {
        let Some(now) = ops(&fresh, &row.protocol, row.batch) else {
            continue;
        };
        if now < row.ops_per_sec * REGRESSION_FLOOR {
            failures.push(format!(
                "{} batch {}: {:.0} ops/s is a >20% regression from recorded {:.0}",
                row.protocol, row.batch, now, row.ops_per_sec
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    println!("check ok (measured speedup {measured:.2}x, no >20% ops/s regressions)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_0006.json");
        check(path);
        return;
    }
    let out = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_0006.json");
    let config = SweepConfig::default();
    let rows = sweep(&config);
    let measured = speedup(&rows).expect("sweep produced Neo-HM rows");
    let report = Report {
        bench: "batch_sweep".into(),
        provisional: false,
        note: format!("Neo-HM batch>=16 speedup over batch=1: {measured:.2}x"),
        config,
        rows,
    };
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out} (speedup {measured:.2}x)");
    assert!(
        measured >= SPEEDUP_FLOOR,
        "Neo-HM speedup {measured:.2}x is below the {SPEEDUP_FLOOR}x acceptance floor"
    );
}
