//! Quick calibration probe: prints throughput/latency per protocol.
use neo_bench::harness::*;

fn main() {
    let clients: Vec<usize> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![1, 8, 32, 64, 128]);
    for p in Protocol::comparison_set() {
        print!("{:>12}:", p.label());
        for &c in &clients {
            let r = run_experiment(&RunParams::new(*p, c));
            print!(
                "  c{c}: {:>8.1}K {:>7.1}us",
                r.throughput / 1e3,
                r.mean_latency_ns as f64 / 1e3
            );
        }
        println!();
    }
}
