//! Calibration probes.
//!
//! - `probe` / `probe sweep [c1,c2,..]` — throughput/latency grid over
//!   the comparison set (default client counts 1,8,32,64,128).
//! - `probe single <proto> [clients] [measure-ms]` — one protocol, one
//!   line, with wall time and per-op copy accounting.
use neo_bench::harness::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("single") => single(&args[1..]),
        Some("sweep") => sweep(args.get(1).map(|s| s.as_str())),
        None => sweep(None),
        // Back-compat: `probe 1,8,32` sweeps those client counts.
        Some(list) => sweep(Some(list)),
    }
}

fn sweep(clients: Option<&str>) {
    let clients: Vec<usize> = clients
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("client count"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 8, 32, 64, 128]);
    for p in Protocol::comparison_set() {
        print!("{:>12}:", p.label());
        for &c in &clients {
            let r = run_experiment(&RunParams::new(*p, c));
            print!(
                "  c{c}: {:>8.1}K {:>7.1}us",
                r.throughput / 1e3,
                r.mean_latency_ns as f64 / 1e3
            );
        }
        println!();
    }
}

fn single(args: &[String]) {
    let proto = match args.first().map(|s| s.as_str()).unwrap_or("neohm") {
        "neohm" => Protocol::NeoHm,
        "neopk" => Protocol::NeoPk,
        "neobn" => Protocol::NeoBn,
        "pbft" => Protocol::Pbft,
        "zyz" => Protocol::Zyzzyva,
        "zyzf" => Protocol::ZyzzyvaF,
        "hs" => Protocol::HotStuff,
        "minbft" => Protocol::MinBft,
        "unrep" => Protocol::Unreplicated,
        "neohmsw" => Protocol::NeoHmSoftware,
        "neopksw" => Protocol::NeoPkSoftware,
        other => panic!("unknown {other}"),
    };
    let c: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(1);
    let ms: u64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(100);
    let cfg = RunConfig::new(proto)
        .clients(c)
        .window(20 * 1_000_000, ms * 1_000_000);
    let t = Instant::now();
    let r = cfg.run();
    println!(
        "{} c={} -> {:.1}K ops/s, mean {:.1}us p50 {:.1}us p99 {:.1}us ({} ops) [wall {:?}]",
        proto.label(),
        c,
        r.throughput / 1e3,
        r.mean_latency_ns as f64 / 1e3,
        r.p50_latency_ns as f64 / 1e3,
        r.p99_latency_ns as f64 / 1e3,
        r.committed,
        t.elapsed()
    );
    println!(
        "  copy: {:.0} payload B/op, {:.2} allocs/op, {} clones total",
        r.copy.bytes_per_op, r.copy.allocs_per_op, r.copy.payload_clones
    );
}
