//! Operator entry point for the bench toolkit.
//!
//! Currently one subcommand:
//!
//! - `neo-bench compare <old.json> <new.json> [--check] [--floor F]
//!   [--ceiling C]` — diff two sweep reports (as written by
//!   `batch_sweep [out.json]` / `verify_sweep [out.json]`) with
//!   per-metric tolerance bands. Prints a human diff table; with
//!   `--check`, exits non-zero when the new report regresses past a
//!   band or drops a row. Provisional baselines (modeled numbers) warn
//!   instead of gating — see `crates/bench/src/compare.rs`.

use neo_bench::compare::{compare, render, CompareConfig};

fn usage() -> ! {
    eprintln!(
        "usage: neo-bench compare <old.json> <new.json> [--check] [--floor F] [--ceiling C]\n\
         \n\
         --check       exit 1 on regression (default: report only)\n\
         --floor F     higher-better metrics must stay >= F x old (default 0.8)\n\
         --ceiling C   lower-better (_ns) metrics must stay <= C x old (default 1.25)"
    );
    std::process::exit(2);
}

fn load(path: &str) -> serde_json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("neo-bench: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("neo-bench: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn flag_value(args: &[String], flag: &str) -> Option<f64> {
    let i = args.iter().position(|a| a == flag)?;
    let v = args.get(i + 1).unwrap_or_else(|| usage());
    Some(v.parse().unwrap_or_else(|_| {
        eprintln!("neo-bench: bad {flag} value: {v}");
        std::process::exit(2);
    }))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => {}
        _ => usage(),
    }
    // Positionals are whatever is left after flags and the values of
    // value-taking flags.
    let mut files: Vec<&str> = Vec::new();
    let mut skip_next = false;
    for a in &args[1..] {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--floor" || a == "--ceiling" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        files.push(a);
    }
    let [old_path, new_path] = files[..] else {
        usage();
    };
    let mut cfg = CompareConfig::default();
    if let Some(f) = flag_value(&args, "--floor") {
        cfg.floor = f;
    }
    if let Some(c) = flag_value(&args, "--ceiling") {
        cfg.ceiling = c;
    }
    let check = args.iter().any(|a| a == "--check");

    let old = load(old_path);
    let new = load(new_path);
    let report = match compare(&old, &new, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("neo-bench: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", render(&report, &cfg));
    if check && !report.passed() {
        std::process::exit(1);
    }
}
