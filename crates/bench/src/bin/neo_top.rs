//! `neo-top` — live operator console over the telemetry plane.
//!
//! Two sources:
//!
//! - `neo-top --addr 127.0.0.1:9464` — poll a node's (or the chaos
//!   bin's) `--telemetry-addr` endpoint: `GET /metrics` (Prometheus
//!   exposition) and `GET /health` (JSON). Refreshes every
//!   `--interval-ms` (default 1000), clearing the screen between
//!   frames. With `--once`, takes exactly two samples one interval
//!   apart, prints one frame, and exits (rates need a delta).
//! - `neo-top --replay obs.jsonl` — offline: summarize an
//!   `--obs-out` JSONL stream (`ObsStreamLine` per node per slice),
//!   rendering the same frame from the first→last snapshot window.
//!
//! Per node the frame shows commit/exec rates (event-counter deltas
//! over the sample window), client-latency p50/p99 recomputed from
//! Prometheus histogram *bucket deltas* (so the quantiles describe the
//! window, not the whole run), fsync p99, gap activity, view-change
//! counts, and the health verdict. Nodes mid-recovery get a banner
//! above the table.

use neo_bench::report::{fmt_us, Table};
use neo_sim::obs::{EventKind, HealthReport, ObsStreamLine};
use neo_sim::render_prometheus;
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// `(node, series)` — series is a family name or `events/<kind>`.
type SeriesKey = (String, String);
/// Cumulative histogram buckets: `(le, cumulative count)`, ascending.
type Buckets = Vec<(f64, u64)>;

/// One scrape (or one replay window edge), parsed.
#[derive(Clone, Debug, Default)]
struct Sample {
    /// Sample time in seconds (monotonic for live, stream time for replay).
    at_s: f64,
    counters: BTreeMap<SeriesKey, f64>,
    buckets: BTreeMap<SeriesKey, Buckets>,
    health: Vec<HealthReport>,
}

fn usage() -> ! {
    eprintln!(
        "usage: neo-top --addr <host:port> [--interval-ms N] [--once]\n\
         \u{20}      neo-top --replay <obs.jsonl>\n\
         \n\
         --addr A         poll A/metrics and A/health (a --telemetry-addr endpoint)\n\
         --interval-ms N  refresh period (default 1000)\n\
         --once           two samples, one frame, exit\n\
         --replay F       summarize an --obs-out JSONL stream instead of polling"
    );
    std::process::exit(2);
}

fn get<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a.as_str() == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    if let Some(path) = get(&args, "--replay") {
        std::process::exit(replay(path));
    }
    let Some(addr) = get(&args, "--addr") else {
        usage();
    };
    let interval = Duration::from_millis(
        get(&args, "--interval-ms")
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("bad --interval-ms: {v}"))
            })
            .unwrap_or(1000),
    );
    std::process::exit(live(addr, interval, once));
}

// ---------------------------------------------------------------- live

fn live(addr: &str, interval: Duration, once: bool) -> i32 {
    let start = Instant::now();
    let mut prev: Option<Sample> = None;
    let mut frames = 0u64;
    loop {
        match scrape(addr, start) {
            Ok(cur) => {
                // First sample only seeds the delta window.
                if prev.is_some() || !once {
                    print_frame(prev.as_ref(), &cur, !once && frames > 0);
                    frames += 1;
                    if once {
                        return 0;
                    }
                }
                prev = Some(cur);
            }
            Err(e) => {
                eprintln!("neo-top: {e}");
                if once {
                    return 1;
                }
            }
        }
        std::thread::sleep(interval);
    }
}

fn scrape(addr: &str, start: Instant) -> Result<Sample, String> {
    let metrics = http_get(addr, "/metrics")?;
    let health = http_get(addr, "/health")?;
    let mut s = Sample {
        at_s: start.elapsed().as_secs_f64(),
        ..Sample::default()
    };
    parse_exposition(&metrics, &mut s);
    s.health =
        serde_json::from_str(&health).map_err(|e| format!("bad /health JSON from {addr}: {e}"))?;
    Ok(s)
}

/// Minimal HTTP/1.1 GET over a std TcpStream (the server closes after
/// one response, so read-to-end delimits the body).
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("{addr}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}{path}: malformed response"))?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("{addr}{path}: {status}"));
    }
    Ok(body.to_string())
}

// -------------------------------------------------------------- replay

fn replay(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("neo-top: cannot read {path}: {e}");
            return 2;
        }
    };
    let mut first: BTreeMap<String, ObsStreamLine> = BTreeMap::new();
    let mut last: BTreeMap<String, ObsStreamLine> = BTreeMap::new();
    let mut lines = 0u64;
    for raw in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(line) = serde_json::from_str::<ObsStreamLine>(raw) else {
            eprintln!("neo-top: skipping malformed line in {path}");
            continue;
        };
        lines += 1;
        let node = line.node.to_string();
        first.entry(node.clone()).or_insert_with(|| line.clone());
        last.insert(node, line);
    }
    if last.is_empty() {
        eprintln!("neo-top: no ObsStreamLine records in {path}");
        return 2;
    }
    let prev = sample_from(first.values());
    let cur = sample_from(last.values());
    println!(
        "replaying {path}: {lines} lines, {} node(s), {:.2}s window",
        last.len(),
        cur.at_s - prev.at_s
    );
    print_frame(Some(&prev), &cur, false);
    0
}

/// Build a [`Sample`] from stream lines by rendering each snapshot to
/// Prometheus text and re-parsing it — one parser for both sources.
fn sample_from<'a>(lines: impl Iterator<Item = &'a ObsStreamLine>) -> Sample {
    let mut s = Sample::default();
    let mut max_at = 0u64;
    for line in lines {
        let node = line.node.to_string();
        let rendered = render_prometheus(&[(node.clone(), line.snapshot.clone())]);
        parse_exposition(&rendered, &mut s);
        max_at = max_at.max(line.at);
        s.health.push(HealthReport {
            node,
            healthy: true,
            committed: line.snapshot.event(EventKind::Commit),
            fsync_p99_ns: line
                .snapshot
                .histograms
                .get("store.fsync_ns")
                .map_or(0, |h| h.p99),
            ..HealthReport::default()
        });
    }
    s.at_s = max_at as f64 / 1e9;
    s
}

// ------------------------------------------------------------- parsing

/// Parse `k="v"` label pairs (our label values never contain commas).
fn labels(s: &str) -> Vec<(&str, String)> {
    s.split(',')
        .filter_map(|part| {
            let (k, v) = part.split_once('=')?;
            let v = v
                .trim_matches('"')
                .replace("\\\"", "\"")
                .replace("\\n", "\n")
                .replace("\\\\", "\\");
            Some((k, v))
        })
        .collect()
}

/// Fold a Prometheus text exposition into `sample`. Counters and gauges
/// become `(node, family)` series; `neobft_events_total` fans out per
/// `kind` label as `events/<kind>`; `_bucket` lines accumulate into
/// cumulative histograms keyed by family.
fn parse_exposition(text: &str, sample: &mut Sample) {
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((head, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(v) = value.parse::<f64>() else {
            continue;
        };
        let (name, label_str) = match head.split_once('{') {
            Some((n, rest)) => (n, rest.strip_suffix('}').unwrap_or(rest)),
            None => (head, ""),
        };
        let pairs = labels(label_str);
        let node = pairs
            .iter()
            .find(|(k, _)| *k == "node")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        if let Some(family) = name.strip_suffix("_bucket") {
            if let Some((_, le)) = pairs.iter().find(|(k, _)| *k == "le") {
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap_or(f64::INFINITY)
                };
                sample
                    .buckets
                    .entry((node, family.to_string()))
                    .or_default()
                    .push((le, v as u64));
                continue;
            }
        }
        if name == "neobft_events_total" {
            if let Some((_, kind)) = pairs.iter().find(|(k, _)| *k == "kind") {
                sample.counters.insert((node, format!("events/{kind}")), v);
                continue;
            }
        }
        sample.counters.insert((node, name.to_string()), v);
    }
    for b in sample.buckets.values_mut() {
        b.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
}

// ------------------------------------------------------------ deriving

/// Per-second rate of a counter series over the sample window.
fn rate(prev: Option<&Sample>, cur: &Sample, node: &str, series: &str) -> f64 {
    let key = (node.to_string(), series.to_string());
    let now = cur.counters.get(&key).copied().unwrap_or(0.0);
    let Some(p) = prev else { return 0.0 };
    let dt = cur.at_s - p.at_s;
    if dt <= 0.0 {
        return 0.0;
    }
    (now - p.counters.get(&key).copied().unwrap_or(0.0)).max(0.0) / dt
}

/// Quantile of the values recorded *during the window*: subtract the
/// previous cumulative bucket counts from the current ones, then walk
/// the delta histogram. `None` when nothing was recorded. `u64::MAX`
/// stands for the `+Inf` bucket.
fn quantile_delta(prev: Option<&Buckets>, cur: &Buckets, q: f64) -> Option<u64> {
    let prev_at = |le: f64| -> u64 {
        prev.and_then(|b| b.iter().find(|(l, _)| *l == le))
            .map_or(0, |(_, c)| *c)
    };
    let deltas: Buckets = cur
        .iter()
        .map(|(le, c)| (*le, c.saturating_sub(prev_at(*le))))
        .collect();
    let total = deltas.last().map(|(_, c)| *c)?;
    if total == 0 {
        return None;
    }
    let target = ((total as f64) * q).ceil() as u64;
    for (le, c) in &deltas {
        if *c >= target {
            return Some(if le.is_finite() { *le as u64 } else { u64::MAX });
        }
    }
    None
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

fn fmt_quantile(q: Option<u64>) -> String {
    match q {
        None => "-".to_string(),
        Some(u64::MAX) => "+Inf".to_string(),
        Some(v) => fmt_us(v),
    }
}

// ----------------------------------------------------------- rendering

fn print_frame(prev: Option<&Sample>, cur: &Sample, clear: bool) {
    if clear {
        print!("\x1b[2J\x1b[H");
    }
    for h in &cur.health {
        if h.verify_poisoned {
            println!("** {}: VERIFY POOL POISONED **", h.node);
        }
        if let Some(p) = &h.protocol {
            if let Some(phase) = p.recovery_phase.as_deref() {
                if phase != "active" {
                    match p.recovery_base {
                        Some(base) => {
                            println!("** RECOVERY: {} is {} (base slot {base}) **", h.node, phase)
                        }
                        None => println!("** RECOVERY: {} is {} **", h.node, phase),
                    }
                }
            }
        }
    }
    let mut table = Table::new(
        "neo-top",
        &[
            "Node",
            "Role",
            "Ep/View",
            "Phase",
            "Commit/s",
            "Exec/s",
            "lat p50",
            "lat p99",
            "fsync p99",
            "Gap/s",
            "VC",
            "Healthy",
        ],
    );
    let mut total_commit = 0.0;
    let mut unhealthy = 0;
    for h in &cur.health {
        let n = &h.node;
        let commit =
            rate(prev, cur, n, "events/commit") + rate(prev, cur, n, "events/client_commit");
        total_commit += rate(prev, cur, n, "events/commit");
        let exec = rate(prev, cur, n, "events/speculative_execute");
        let gaps = rate(prev, cur, n, "events/gap_find") + rate(prev, cur, n, "events/gap_commit");
        let vc_key = |s: &str| (n.clone(), format!("events/{s}"));
        let vc = cur
            .counters
            .get(&vc_key("view_change"))
            .copied()
            .unwrap_or(0.0)
            + cur
                .counters
                .get(&vc_key("epoch_change"))
                .copied()
                .unwrap_or(0.0);
        let lat_key = (n.clone(), "neobft_client_latency_ns".to_string());
        let lat = cur.buckets.get(&lat_key);
        let prev_lat = prev.and_then(|p| p.buckets.get(&lat_key));
        let p50 = lat.and_then(|b| quantile_delta(prev_lat, b, 0.50));
        let p99 = lat.and_then(|b| quantile_delta(prev_lat, b, 0.99));
        let (role, ep_view, phase) = match &h.protocol {
            Some(p) => (
                p.role.clone(),
                format!("{}/{}", p.epoch, p.view),
                p.recovery_phase.clone().unwrap_or_else(|| "-".to_string()),
            ),
            None => ("?".to_string(), "-".to_string(), "-".to_string()),
        };
        if !h.healthy {
            unhealthy += 1;
        }
        table.row(vec![
            n.clone(),
            role,
            ep_view,
            phase,
            fmt_rate(commit),
            fmt_rate(exec),
            fmt_quantile(p50),
            fmt_quantile(p99),
            if h.fsync_p99_ns > 0 {
                fmt_us(h.fsync_p99_ns)
            } else {
                "-".to_string()
            },
            format!("{gaps:.1}"),
            format!("{vc:.0}"),
            if h.healthy { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "cluster: {} node(s), {} unhealthy, replica commit rate {}/s",
        cur.health.len(),
        unhealthy,
        fmt_rate(total_commit)
    );
}

// --------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use super::*;
    use neo_sim::obs::{Metrics, ObsConfig};

    #[test]
    fn parses_what_the_renderer_writes() {
        let m = Metrics::new(ObsConfig::default());
        m.incr("replica.messages_in");
        m.incr("replica.messages_in");
        for v in [100, 200, 300, 400_000] {
            m.observe("client.latency_ns", v);
        }
        let text = render_prometheus(&[("r0".to_string(), m.snapshot())]);
        let mut s = Sample::default();
        parse_exposition(&text, &mut s);
        assert_eq!(
            s.counters.get(&(
                "r0".to_string(),
                "neobft_replica_messages_in_total".to_string()
            )),
            Some(&2.0)
        );
        let buckets = s
            .buckets
            .get(&("r0".to_string(), "neobft_client_latency_ns".to_string()))
            .expect("histogram parsed");
        let (last_le, last_cum) = *buckets.last().unwrap();
        assert!(last_le.is_infinite(), "+Inf bucket present");
        assert_eq!(last_cum, 4, "cumulative count reaches the total");
        // Cumulative counts are monotonically non-decreasing.
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn events_fan_out_per_kind() {
        let text = "# TYPE neobft_events_total counter\n\
                    neobft_events_total{node=\"r0\",kind=\"commit\"} 7\n\
                    neobft_events_total{node=\"r0\",kind=\"view_change\"} 1\n";
        let mut s = Sample::default();
        parse_exposition(text, &mut s);
        assert_eq!(
            s.counters
                .get(&("r0".to_string(), "events/commit".to_string())),
            Some(&7.0)
        );
        assert_eq!(
            s.counters
                .get(&("r0".to_string(), "events/view_change".to_string())),
            Some(&1.0)
        );
    }

    #[test]
    fn rates_are_deltas_over_the_window() {
        let mut prev = Sample {
            at_s: 10.0,
            ..Sample::default()
        };
        prev.counters
            .insert(("r0".to_string(), "events/commit".to_string()), 1000.0);
        let mut cur = Sample {
            at_s: 12.0,
            ..Sample::default()
        };
        cur.counters
            .insert(("r0".to_string(), "events/commit".to_string()), 1500.0);
        assert_eq!(rate(Some(&prev), &cur, "r0", "events/commit"), 250.0);
        // No previous sample: no rate.
        assert_eq!(rate(None, &cur, "r0", "events/commit"), 0.0);
    }

    #[test]
    fn quantiles_come_from_bucket_deltas() {
        // Window: prev has 10 obs all <= 100; cur adds 90 obs <= 1000.
        let prev: Buckets = vec![(100.0, 10), (1000.0, 10), (f64::INFINITY, 10)];
        let cur: Buckets = vec![(100.0, 10), (1000.0, 100), (f64::INFINITY, 100)];
        // All 90 new observations land in (100, 1000]: both quantiles 1000.
        assert_eq!(quantile_delta(Some(&prev), &cur, 0.50), Some(1000));
        assert_eq!(quantile_delta(Some(&prev), &cur, 0.99), Some(1000));
        // Without the baseline, the old 10 fast obs drag p50 down.
        assert_eq!(quantile_delta(None, &cur, 0.05), Some(100));
        // Empty window: no quantile.
        assert_eq!(quantile_delta(Some(&cur), &cur, 0.50), None);
    }

    #[test]
    fn inf_bucket_renders_as_inf() {
        let cur: Buckets = vec![(100.0, 0), (f64::INFINITY, 5)];
        assert_eq!(quantile_delta(None, &cur, 0.99), Some(u64::MAX));
        assert_eq!(fmt_quantile(Some(u64::MAX)), "+Inf");
    }
}
