//! `neo-trace` — render request waterfalls from observability artifacts.
//!
//! Reads either a flight-recorder dump (a single `FlightDump` JSON
//! object, as written by the chaos explorer or `neobft-node` on SIGINT)
//! or a live-exporter stream (`ObsStreamLine` JSONL, one object per
//! line); the format is sniffed from the content.
//!
//! ```bash
//! neo-trace target/flight/flight-seed-17.json            # dump header,
//! neo-trace --list run.jsonl                             # spans table,
//! neo-trace --request 3:7 run.jsonl                      # one waterfall,
//! neo-trace --all target/flight/flight-seed-17.json      # every waterfall,
//! neo-trace --check crates/bench/tests/fixtures/flight-fixture.json
//! ```
//!
//! `--check` parses the artifact, assembles spans, and renders every
//! waterfall, exiting non-zero if the artifact is unreadable or contains
//! no assemblable span — the CI self-test for the artifact format.

use neo_bench::trace::{assemble, render_waterfall, RequestTimeline};
use neo_sim::{EventRecord, FlightDump, ObsStreamLine};

fn fail(msg: &str) -> ! {
    eprintln!("neo-trace: {msg}");
    std::process::exit(1);
}

/// Parse the artifact into a merged event stream plus an optional dump
/// header (present only for flight dumps).
fn load(path: &str) -> (Vec<EventRecord>, Option<FlightDump>) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    // A flight dump is one JSON object; a stream is JSONL. Try the dump
    // first — a dump never parses as a one-line stream and vice versa.
    if let Ok(dump) = serde_json::from_str::<FlightDump>(&text) {
        let events = dump.merged_events();
        return (events, Some(dump));
    }
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let line: ObsStreamLine = serde_json::from_str(line).unwrap_or_else(|e| {
            fail(&format!(
                "{path}:{}: not a FlightDump or ObsStreamLine: {e}",
                i + 1
            ))
        });
        events.extend(line.events);
    }
    events.sort_by_key(|r| r.at);
    (events, None)
}

fn print_header(dump: &FlightDump) {
    println!("flight dump: reason {:?} at {}ns", dump.reason, dump.at);
    for (k, v) in &dump.context {
        println!("  {k}: {v}");
    }
    for v in &dump.violations {
        println!("  violation: {v}");
    }
    let packets: usize = dump.nodes.iter().map(|n| n.packets.len()).sum();
    println!(
        "  {} node(s), {} event(s), {} packet digest(s)",
        dump.nodes.len(),
        dump.merged_events().len(),
        packets
    );
}

fn list(spans: &[RequestTimeline]) {
    println!(
        "{:>8} {:>8} {:>6}  {}",
        "client", "request", "slot", "milestones"
    );
    for s in spans {
        let slot = s.slot.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
        let milestones: Vec<&str> = s
            .milestones()
            .iter()
            .filter(|(_, t)| t.is_some())
            .map(|(name, _)| *name)
            .collect();
        println!(
            "{:>8} {:>8} {:>6}  {}{}{}",
            s.client,
            s.request,
            slot,
            milestones.join(" → "),
            if s.gap { "  [gap]" } else { "" },
            if s.view_change { "  [view change]" } else { "" },
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // The input path is the first argument that is neither a flag nor
    // the value of the one value-taking flag (--request).
    let mut path: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--request" => i += 2,
            s if s.starts_with("--") => i += 1,
            s => {
                path = Some(s);
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        fail("usage: neo-trace [--list | --all | --request C:R | --check] <dump.json | stream.jsonl>");
    };

    let (events, dump) = load(path);
    let spans = assemble(&events);

    if flag("--check") {
        if spans.is_empty() {
            fail(&format!("{path}: no request spans assembled"));
        }
        let mut rendered = 0;
        for s in &spans {
            print!("{}", render_waterfall(s));
            rendered += 1;
        }
        println!("neo-trace: ok — {} span(s) rendered from {path}", rendered);
        return;
    }

    if let Some(dump) = &dump {
        print_header(dump);
    }
    if let Some(req) = value("--request") {
        let (c, r) = req
            .split_once(':')
            .and_then(|(c, r)| Some((c.parse::<u64>().ok()?, r.parse::<u64>().ok()?)))
            .unwrap_or_else(|| fail(&format!("bad --request {req}: expected <client>:<request>")));
        let span = spans
            .iter()
            .find(|s| s.client == c && s.request == r)
            .unwrap_or_else(|| {
                fail(&format!(
                    "request {c}:{r} not found ({} spans)",
                    spans.len()
                ))
            });
        print!("{}", render_waterfall(span));
    } else if flag("--all") {
        for s in &spans {
            print!("{}", render_waterfall(s));
        }
    } else {
        // Default (and --list): the spans table after any dump header.
        list(&spans);
    }
}
