use neo_aom::{ConfigService, SequencerNode};
use neo_bench::harness::*;
use neo_core::{Client, Replica};
use neo_sim::MILLIS;
use neo_wire::{Addr, ClientId, ReplicaId};

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap())
        .unwrap_or(32);
    let mut p = RunParams::new(Protocol::NeoHm, clients);
    p.warmup = 0;
    p.measure = 400 * MILLIS;
    let mut sim = build(&p);
    sim.run_until(50 * MILLIS);
    sim.node_mut::<SequencerNode>(Addr::Sequencer(GROUP))
        .unwrap()
        .set_behavior(neo_aom::Behavior::Mute);
    for t in [100u64, 150, 200, 300, 400, 600] {
        sim.run_until(t * MILLIS);
        let cfg = sim.node_ref::<ConfigService>(Addr::Config).unwrap();
        let seq = sim
            .node_ref::<SequencerNode>(Addr::Sequencer(GROUP))
            .unwrap();
        print!(
            "t={t}ms failovers={} seq_epoch={} ",
            cfg.failovers,
            seq.epoch()
        );
        for r in 0..4 {
            let rep = sim
                .node_ref::<Replica>(Addr::Replica(ReplicaId(r)))
                .unwrap();
            print!(
                "r{r}[view={} log={} vc={}] ",
                rep.view(),
                rep.log_len(),
                rep.stats.view_changes
            );
        }
        let done: usize = (0..clients as u64)
            .map(|c| {
                sim.node_ref::<Client>(Addr::Client(ClientId(c)))
                    .unwrap()
                    .completed
                    .len()
            })
            .sum();
        println!("completed={done}");
    }
}
