//! Time the raw simulator event loop with trivial nodes.
use neo_sim::*;
use neo_wire::{Addr, ReplicaId};
use std::any::Any;
use std::time::Instant;

struct Echo;
impl Node for Echo {
    fn on_message(&mut self, from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        if payload[0] > 0 {
            let mut p = payload.to_vec();
            p[0] -= 1;
            ctx.send(from, p);
        }
    }
    fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let mut sim = Simulator::new(SimConfig {
        net: NetConfig::DATACENTER,
        default_cpu: CpuConfig::SERVER,
        seed: 1,
        faults: FaultPlan::none(),
    });
    let a = Addr::Replica(ReplicaId(0));
    let b = Addr::Replica(ReplicaId(1));
    sim.add_node(a, Box::new(Echo));
    sim.add_node(b, Box::new(Echo));
    for i in 0..50 {
        sim.post(a, b, vec![255u8; 64], i);
    }
    let t = Instant::now();
    let n = sim.run_until(u64::MAX / 2);
    println!(
        "{} events in {:?} ({:.0}ns/event)",
        n,
        t.elapsed(),
        t.elapsed().as_nanos() as f64 / n as f64
    );
}
