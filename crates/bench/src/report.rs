//! Plain-text table/series formatting for experiment output, plus an
//! optional JSON side-channel for plotting scripts.

use neo_sim::MetricsSnapshot;
use serde::Serialize;

/// A printable table with a title, column headers, and rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        let total = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format ops/sec as `123.4K`.
pub fn fmt_ops(ops: f64) -> String {
    if ops >= 1e6 {
        format!("{:.2}M", ops / 1e6)
    } else {
        format!("{:.1}K", ops / 1e3)
    }
}

/// Format nanoseconds as microseconds.
pub fn fmt_us(ns: u64) -> String {
    format!("{:.1}µs", ns as f64 / 1e3)
}

/// Render an observability snapshot as a per-phase breakdown table:
/// protocol events first, then named counters and gauges, then latency
/// histograms with their quantiles. `label` names the node set the
/// snapshot covers (e.g. "Neo-HM aggregate", "PBFT replica 0").
pub fn phase_breakdown(label: &str, snap: &MetricsSnapshot) -> Table {
    let mut t = Table::new(&format!("Phase breakdown — {label}"), &["Metric", "Value"]);
    for (kind, count) in &snap.events {
        t.row(vec![format!("event.{kind}"), count.to_string()]);
    }
    for (name, value) in &snap.counters {
        t.row(vec![name.clone(), value.to_string()]);
    }
    for (name, value) in &snap.gauges {
        t.row(vec![format!("{name} (gauge)"), value.to_string()]);
    }
    for (name, h) in &snap.histograms {
        // Histograms named `*_ns` hold nanosecond latencies; everything
        // else (batch sizes, …) is unitless.
        let v = |x: u64| {
            if name.ends_with("_ns") {
                fmt_us(x)
            } else {
                x.to_string()
            }
        };
        t.row(vec![
            name.clone(),
            format!(
                "n={} mean={} p50={} p90={} p99={} max={}",
                h.count,
                v(h.mean() as u64),
                v(h.p50),
                v(h.p90),
                v(h.p99),
                v(h.max),
            ),
        ]);
    }
    if snap.trace_dropped > 0 {
        t.row(vec![
            "trace_dropped".to_string(),
            snap.trace_dropped.to_string(),
        ]);
    }
    t
}

/// When `NEO_BENCH_JSON` is set to a directory, write `value` as
/// `<dir>/<name>.json` so plotting scripts can consume the exact series
/// behind each printed table. Silent no-op otherwise.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let Some(dir) = std::env::var_os("NEO_BENCH_JSON") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        eprintln!("[neo-bench] wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ops(1_500_000.0), "1.50M");
        assert_eq!(fmt_ops(250_300.0), "250.3K");
        assert_eq!(fmt_us(12_345), "12.3µs");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
