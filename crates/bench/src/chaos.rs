//! neo-chaos: deterministic adversarial exploration.
//!
//! Every scenario is derived from a single `u64` seed: the fault plan
//! (duplication, delay spikes, tampering, partitions), the optional
//! Byzantine transport adapter, and the simulator's RNG all come from
//! it. A seed therefore *is* a reproduction: the sweep prints the seed
//! and the serialized plan on any safety violation, and re-running that
//! seed replays the run byte-for-byte.
//!
//! The runner drives a NeoBFT cluster in slices and checks the global
//! safety invariants ([`neo_core::invariants`]) at every slice boundary
//! and again after a drain period — transient violations that healing
//! would mask still get caught. A PBFT control runs the same fault plan
//! through a classical protocol, both as a harness sanity check and to
//! confirm the plan generator produces survivable scenarios.
//!
//! Every correct replica runs on a durable [`MemStore`]: checkpoints are
//! certified and WAL records flushed under chaos on every seed, and
//! `CrashRestart` plans (every third seed) additionally remove a
//! replica's node object mid-run — its unflushed buffer dies with it —
//! then rebuild a fresh replica over the surviving [`MemDisk`], whose
//! recovery handshake must rejoin it via certified state transfer.

use crate::harness::{Protocol, RunConfig, GROUP};
use neo_aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neo_app::{EchoApp, EchoWorkload};
use neo_baselines::PbftClient;
use neo_core::invariants::InvariantChecker;
use neo_core::{BatchPolicy, Client, NeoConfig, Replica};
use neo_crypto::{CostModel, SystemKeys};
use neo_sim::{
    ByzStrategy, ByzantineNode, CpuConfig, FaultPlan, FlightDump, NetConfig, NetStats, ObsConfig,
    SimConfig, Simulator, MICROS, MILLIS,
};
use neo_store::{MemDisk, MemStore};
use neo_wire::{Addr, ClientId, ReplicaId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Replica count of every chaos cluster (f = 1).
pub const N: usize = 4;
/// Fault bound.
pub const F: usize = 1;
/// Virtual-time horizon of one chaos run.
pub const HORIZON: u64 = 20 * MILLIS;
/// Invariants are checked this many times during a run (plus once after
/// the drain).
const SLICES: u64 = 10;
/// Modeled fsync latency the simulator charges per store flush. Chaos
/// replicas are durable, so the WAL's latency contribution is simulated
/// rather than hidden behind free I/O.
const FSYNC_MODEL_NS: u64 = 5 * MICROS;

/// Which replica runs behind a Byzantine transport adapter, and how it
/// misbehaves.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ByzAssignment {
    /// The wrapped replica.
    pub replica: u32,
    /// Its misbehaviour.
    pub strategy: ByzStrategy,
}

/// A fully serialized chaos scenario. `generate_plan(seed)` is a pure
/// function, so the seed alone reproduces the plan; the plan is still
/// embedded in violation reports so a report is self-contained even if
/// the generator changes later.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Master seed: drives plan generation and the simulator RNG.
    pub seed: u64,
    /// Virtual run length in nanoseconds (faults all heal before it).
    pub horizon_ns: u64,
    /// Closed-loop clients.
    pub n_clients: usize,
    /// NeoBFT sync interval (small, so runs cross many sync points).
    pub sync_interval: u64,
    /// Network fault rules.
    pub faults: FaultPlan,
    /// Optional Byzantine replica.
    pub byz: Option<ByzAssignment>,
    /// Client batch size (1 = the pre-batching closed loop). Cycles
    /// through {1, 4, 16} with the seed so every sweep of three or more
    /// consecutive seeds exercises batched and unbatched paths alike.
    /// Defaults to 1 when decoding plans serialized before batching.
    #[serde(default = "default_plan_batch")]
    pub batch: usize,
}

fn default_plan_batch() -> usize {
    1
}

/// Outcome of one chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosOutcome {
    /// The scenario that ran.
    pub plan: ChaosPlan,
    /// Rendered safety violations — empty on a correct run.
    pub violations: Vec<String>,
    /// Client operations that completed.
    pub committed: u64,
    /// Network counters (shows the faults actually fired).
    pub net: NetStats,
    /// Sends the Byzantine adapter perturbed (0 without one).
    pub byz_perturbed: u64,
    /// For each crash-restart fault, the slot the replica resumed from
    /// after its restart. A non-zero base proves it rejoined from a
    /// certified checkpoint instead of replaying from slot 0.
    pub recovered_bases: Vec<u64>,
    /// Checkpoints certified across the correct replicas — evidence the
    /// durable pipeline (capture → 2f+1 sync votes → stable) ran.
    pub checkpoints_certified: u64,
    /// State-transfer replies served to recovering peers.
    pub state_replies_served: u64,
    /// Flight-recorder dump captured at the moment the invariant checker
    /// tripped — `None` on a correct run. Self-contained: carries the
    /// seed and serialized plan in its context plus every node's recent
    /// events and packet digests.
    pub flight: Option<FlightDump>,
}

/// Derive the full scenario from a seed.
///
/// The first rule's kind is pinned to `seed % 4`, so any sweep of four
/// or more consecutive seeds provably covers all four fault kinds;
/// odd seeds carry a Byzantine adapter, and every third seed crashes a
/// correct replica mid-run and restarts it over its durable disk.
/// Everything else is drawn from a ChaCha8 stream seeded by `seed`.
pub fn generate_plan(seed: u64) -> ChaosPlan {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6e65_6f5f_6368_616f); // "neo_chao"
    let h = HORIZON;
    let mut faults = FaultPlan::none();
    let n_rules = rng.gen_range(2..=4u32);
    for i in 0..n_rules {
        // Fault windows sit inside [h/5, 7h/10]: everything heals with
        // enough horizon left for recovery machinery to run.
        let from = rng.gen_range(h / 5..h / 2);
        let until = rng.gen_range(from + h / 20..=7 * h / 10);
        let src = if rng.gen_bool(0.5) {
            Addr::Sequencer(GROUP)
        } else {
            Addr::Replica(ReplicaId(rng.gen_range(0..N as u32)))
        };
        let kind = if i == 0 {
            (seed % 4) as u32
        } else {
            rng.gen_range(0..4u32)
        };
        faults = match kind {
            0 => faults.duplicate(src, rng.gen_range(2..=4), from, until),
            1 => faults.delay_spike(src, rng.gen_range(50 * MICROS..=2 * MILLIS), from, until),
            2 => faults.tamper(src, from, until),
            _ => {
                let island: Vec<Addr> = match rng.gen_range(0..4u32) {
                    0 => vec![Addr::Replica(ReplicaId(rng.gen_range(0..N as u32)))],
                    1 => vec![Addr::Sequencer(GROUP)],
                    2 => vec![Addr::Replica(ReplicaId(0)), Addr::Replica(ReplicaId(1))],
                    _ => vec![
                        Addr::Sequencer(GROUP),
                        Addr::Replica(ReplicaId(0)),
                        Addr::Replica(ReplicaId(1)),
                    ],
                };
                faults.partition(island, from, until)
            }
        };
    }
    let byz = (seed % 2 == 1).then(|| ByzAssignment {
        replica: rng.gen_range(0..N as u32),
        strategy: match rng.gen_range(0..3u32) {
            0 => ByzStrategy::Equivocate,
            1 => ByzStrategy::ReplayStale {
                every: rng.gen_range(2..=6),
            },
            _ => ByzStrategy::SilenceTowards(vec![Addr::Replica(ReplicaId(
                rng.gen_range(0..N as u32),
            ))]),
        },
    });
    // Every third seed crashes one correct replica and brings it back
    // before the horizon: the fabric drops its packets while down, and
    // the runner swaps the node object around the window. Drawn last so
    // plans from earlier generator versions keep their exact streams.
    if seed % 3 == 2 {
        let victim = loop {
            let v = rng.gen_range(0..N as u32);
            if byz.as_ref().is_none_or(|b| b.replica != v) {
                break v;
            }
        };
        let crash_at = rng.gen_range(h / 5..h / 2);
        let restart_at = rng.gen_range(crash_at + h / 10..=7 * h / 10);
        faults = faults.crash_restart(Addr::Replica(ReplicaId(victim)), crash_at, restart_at);
    }
    ChaosPlan {
        seed,
        horizon_ns: h,
        n_clients: 2,
        sync_interval: 8,
        faults,
        byz,
        batch: [1, 4, 16][(seed % 3) as usize],
    }
}

/// Build the NeoBFT cluster for a plan: software sequencer, free crypto
/// and ideal CPUs (chaos exercises protocol logic, not queueing), the
/// plan's fault rules installed in the fabric, and at most one replica
/// wrapped in a [`ByzantineNode`].
pub fn build_cluster(plan: &ChaosPlan) -> Simulator {
    build_cluster_durable(plan).0
}

/// The replica-side NeoBFT config a plan implies.
fn replica_config(plan: &ChaosPlan) -> NeoConfig {
    let mut cfg = NeoConfig::new(F);
    cfg.sync_interval = plan.sync_interval;
    if plan.batch > 1 {
        cfg = cfg.with_batch(BatchPolicy::fixed(plan.batch));
    }
    cfg
}

/// A correct replica opened over `disk` — used both at cluster build
/// time and when the crash-restart runner rebuilds a crashed replica
/// over its surviving disk ([`SystemKeys`] generation is deterministic,
/// so the rebuilt replica is keyed identically to its first life).
fn durable_replica(plan: &ChaosPlan, r: u32, disk: MemDisk) -> Replica {
    let keys = SystemKeys::new(plan.seed, N, plan.n_clients);
    Replica::with_store(
        ReplicaId(r),
        replica_config(plan),
        &keys,
        CostModel::FREE,
        Box::new(EchoApp::new()),
        Box::new(MemStore::open(disk, FSYNC_MODEL_NS)),
    )
}

/// [`build_cluster`], also returning the per-replica durable disks the
/// crash-restart runner re-opens when it rebuilds a crashed replica.
/// Every correct replica runs on a [`MemStore`]; the Byzantine slot (if
/// any) is `None` — the adapter owns the node box, never restarts, and
/// its state is allowed to be arbitrary anyway.
pub fn build_cluster_durable(plan: &ChaosPlan) -> (Simulator, Vec<Option<MemDisk>>) {
    let keys = SystemKeys::new(plan.seed, N, plan.n_clients);
    let mut sim = Simulator::new(SimConfig {
        net: NetConfig::DATACENTER,
        default_cpu: CpuConfig::IDEAL,
        seed: plan.seed,
        faults: plan.faults.clone(),
    });
    // Chaos always flies with the recorder on: when an invariant trips,
    // the bounded per-node event/packet rings become the post-mortem.
    // Must precede add_node so every node gets a recording registry.
    sim.set_obs(ObsConfig::flight_recorder());
    let cfg = replica_config(plan);

    let mut config = ConfigService::new();
    config.register_group(GROUP, (0..N as u32).map(ReplicaId).collect(), F);
    sim.add_node(Addr::Config, Box::new(config));

    let sequencer = SequencerNode::new(
        GROUP,
        (0..N as u32).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    sim.add_node(Addr::Sequencer(GROUP), Box::new(sequencer));

    let mut disks: Vec<Option<MemDisk>> = Vec::with_capacity(N);
    for r in 0..N as u32 {
        let node: Box<dyn neo_sim::Node> = match &plan.byz {
            Some(b) if b.replica == r => {
                disks.push(None);
                let replica = Replica::new(
                    ReplicaId(r),
                    cfg.clone(),
                    &keys,
                    CostModel::FREE,
                    Box::new(EchoApp::new()),
                );
                Box::new(ByzantineNode::new(Box::new(replica), b.strategy.clone()))
            }
            _ => {
                let disk = MemDisk::new();
                disks.push(Some(disk.clone()));
                Box::new(durable_replica(plan, r, disk))
            }
        };
        sim.add_node(Addr::Replica(ReplicaId(r)), node);
    }
    for c in 0..plan.n_clients as u64 {
        let client = Client::new(
            ClientId(c),
            cfg.clone(),
            &keys,
            CostModel::FREE,
            Box::new(EchoWorkload::new(64, c + 1)),
        );
        sim.add_node(Addr::Client(ClientId(c)), Box::new(client));
    }
    (sim, disks)
}

/// Advance the simulator to `to`, executing any crash/restart runner
/// boundaries on the way: at a crash the node object is removed — its
/// unflushed store buffer dies with it — and at a restart a fresh
/// replica is rebuilt over the same disk, whose bootstrap timer kicks
/// off the recovery handshake against the live peers.
fn advance(
    sim: &mut Simulator,
    plan: &ChaosPlan,
    disks: &[Option<MemDisk>],
    boundaries: &[(u64, Addr, bool)],
    next: &mut usize,
    to: u64,
) {
    while *next < boundaries.len() && boundaries[*next].0 <= to {
        let (at, addr, restart) = boundaries[*next];
        *next += 1;
        sim.run_until(at);
        if !restart {
            sim.remove_node(addr);
            continue;
        }
        let Addr::Replica(ReplicaId(r)) = addr else {
            continue;
        };
        if let Some(disk) = disks.get(r as usize).cloned().flatten() {
            sim.add_node(addr, Box::new(durable_replica(plan, r, disk)));
        }
    }
    sim.run_until(to);
}

/// The *correct* replicas of a run: a Byzantine-wrapped replica is
/// excluded (its `node_ref::<Replica>` downcast also fails, so the
/// filter is structural, not just policy).
fn correct_replicas<'a>(sim: &'a Simulator, plan: &ChaosPlan) -> Vec<&'a Replica> {
    (0..N as u32)
        .filter(|r| plan.byz.as_ref().is_none_or(|b| b.replica != *r))
        .filter_map(|r| sim.node_ref::<Replica>(Addr::Replica(ReplicaId(r))))
        .collect()
}

/// Side-channels for a chaos run, all optional. `run_neo` uses the
/// defaults; the `chaos` bin wires SIGINT and `--obs-out` through here.
#[derive(Default)]
pub struct RunHooks<'a> {
    /// Checked at every slice boundary: when set, the run stops early
    /// and the outcome carries a `"sigint"` flight dump of whatever the
    /// rings held at that moment.
    pub stop: Option<&'a std::sync::atomic::AtomicBool>,
    /// Live exporter: one [`neo_sim::ObsStreamLine`] JSON line per node
    /// is appended at every slice boundary. Draining the trace rings
    /// into the stream means the stream (not the flight dump) is the
    /// complete event log when this is active.
    pub obs_out: Option<&'a mut dyn std::io::Write>,
    /// Fault-injection hook: called after each slice runs, before its
    /// invariant check, with the simulator and the 1-based slice index.
    /// Tests use it to corrupt replica state and exercise the
    /// violation → flight-dump path end to end.
    pub inject: Option<&'a mut dyn FnMut(&mut Simulator, u64)>,
    /// Live scrape plane: when set, every node's metrics snapshot and
    /// health document are published into the hub at every slice
    /// boundary, so a [`neo_sim::TelemetryServer`] over the hub serves
    /// `/metrics` and `/health` for the run as it advances.
    pub telemetry: Option<&'a neo_sim::TelemetryHub>,
}

/// Run the NeoBFT side of a scenario, checking invariants at every
/// slice boundary and after a post-horizon drain.
pub fn run_neo(plan: &ChaosPlan) -> ChaosOutcome {
    run_neo_with(plan, &mut RunHooks::default())
}

/// [`run_neo`] with interruption and live-export hooks.
pub fn run_neo_with(plan: &ChaosPlan, hooks: &mut RunHooks) -> ChaosOutcome {
    let (mut sim, disks) = build_cluster_durable(plan);
    // The runner half of `CrashRestart` (the fabric half drops the down
    // node's packets): `(time, addr, is_restart)` boundaries, in order.
    let mut boundaries: Vec<(u64, Addr, bool)> = Vec::new();
    for (addr, crash_at, restart_at) in plan.faults.crash_restarts() {
        boundaries.push((crash_at, addr, false));
        boundaries.push((restart_at, addr, true));
    }
    boundaries.sort_by_key(|b| b.0);
    let mut next_boundary = 0usize;
    let mut checker = InvariantChecker::new();
    let mut flight: Option<FlightDump> = None;
    // Snapshot the rings at the first slice boundary where the checker
    // trips — later boundaries would have evicted the interesting tail.
    let snap = |sim: &Simulator, checker: &InvariantChecker, flight: &mut Option<FlightDump>| {
        if flight.is_some() || checker.violations().is_empty() {
            return;
        }
        *flight = Some(flight_snapshot(sim, plan, checker, "invariant_violation"));
    };
    let slice = (plan.horizon_ns / SLICES).max(1);
    let mut interrupted = false;
    for i in 1..=SLICES {
        advance(
            &mut sim,
            plan,
            &disks,
            &boundaries,
            &mut next_boundary,
            i * slice,
        );
        if let Some(f) = hooks.inject.as_mut() {
            f(&mut sim, i);
        }
        checker.check(&correct_replicas(&sim, plan));
        snap(&sim, &checker, &mut flight);
        if let Some(w) = hooks.obs_out.as_deref_mut() {
            stream_obs(&mut sim, w);
        }
        if let Some(hub) = hooks.telemetry {
            sim.publish_telemetry(hub);
        }
        if hooks
            .stop
            .map(|s| s.load(std::sync::atomic::Ordering::Relaxed))
            .unwrap_or(false)
        {
            if flight.is_none() {
                flight = Some(flight_snapshot(&sim, plan, &checker, "sigint"));
            }
            interrupted = true;
            break;
        }
    }
    if !interrupted {
        // Drain: faults have healed; give recovery machinery (gap
        // agreement, view changes, state sync) time to settle, then
        // check once more.
        advance(
            &mut sim,
            plan,
            &disks,
            &boundaries,
            &mut next_boundary,
            plan.horizon_ns + plan.horizon_ns / 2,
        );
        checker.check(&correct_replicas(&sim, plan));
        snap(&sim, &checker, &mut flight);
        if let Some(w) = hooks.obs_out.as_deref_mut() {
            stream_obs(&mut sim, w);
        }
        if let Some(hub) = hooks.telemetry {
            sim.publish_telemetry(hub);
        }
    }

    let committed = (0..plan.n_clients as u64)
        .filter_map(|c| sim.node_ref::<Client>(Addr::Client(ClientId(c))))
        .map(|cl| cl.completed.len() as u64)
        .sum();
    let byz_perturbed = plan
        .byz
        .as_ref()
        .and_then(|b| sim.node_ref::<ByzantineNode>(Addr::Replica(ReplicaId(b.replica))))
        .map(|bn| {
            let s = bn.stats();
            s.mutated + s.replayed + s.suppressed
        })
        .unwrap_or(0);
    let recovered_bases: Vec<u64> = plan
        .faults
        .crash_restarts()
        .into_iter()
        .filter_map(|(addr, ..)| sim.node_ref::<Replica>(addr))
        .filter_map(|r| r.recovery_base())
        .map(|s| s.0)
        .collect();
    let (checkpoints_certified, state_replies_served) =
        correct_replicas(&sim, plan).iter().fold((0, 0), |acc, r| {
            (
                acc.0 + r.stats.checkpoints_certified,
                acc.1 + r.stats.state_replies_served,
            )
        });
    ChaosOutcome {
        plan: plan.clone(),
        violations: checker.violations().iter().map(|v| v.to_string()).collect(),
        committed,
        net: sim.stats(),
        byz_perturbed,
        recovered_bases,
        checkpoints_certified,
        state_replies_served,
        flight,
    }
}

/// Append one [`neo_sim::ObsStreamLine`] JSON line per node, draining
/// each node's trace ring into its line. Write errors are swallowed: a
/// full disk must not abort the safety check itself.
fn stream_obs(sim: &mut Simulator, w: &mut dyn std::io::Write) {
    for line in sim.obs_stream_lines() {
        if serde_json::to_writer(&mut *w, &line).is_err() || w.write_all(b"\n").is_err() {
            return;
        }
    }
    let _ = w.flush();
}

/// Freeze the cluster's flight-recorder rings into a self-contained
/// dump: violations rendered, seed and serialized plan embedded so the
/// artifact reproduces the run even detached from sweep output.
fn flight_snapshot(
    sim: &Simulator,
    plan: &ChaosPlan,
    checker: &InvariantChecker,
    reason: &str,
) -> FlightDump {
    let mut dump = sim.flight_dump(reason);
    dump.violations = checker.violations().iter().map(|v| v.to_string()).collect();
    dump.context.insert("seed".into(), plan.seed.to_string());
    dump.context.insert(
        "plan".into(),
        serde_json::to_string(plan).unwrap_or_else(|_| "<unserializable>".into()),
    );
    dump
}

/// Run the same fault plan through PBFT as a control. Returns the
/// committed-op count plus any control-level anomalies (a closed-loop
/// client completing request ids out of order would mean the *harness*
/// is broken, not the protocol).
pub fn run_pbft_control(plan: &ChaosPlan) -> (u64, Vec<String>) {
    let mut sim = RunConfig::new(Protocol::Pbft)
        .clients(plan.n_clients)
        .seed(plan.seed)
        .costs(CostModel::FREE)
        .cpus(CpuConfig::IDEAL, CpuConfig::IDEAL)
        .window(0, plan.horizon_ns)
        .faults(plan.faults.clone())
        .build();
    sim.run_until(plan.horizon_ns + plan.horizon_ns / 2);
    let mut committed = 0u64;
    let mut anomalies = Vec::new();
    for c in 0..plan.n_clients as u64 {
        let Some(client) = sim.node_ref::<PbftClient>(Addr::Client(ClientId(c))) else {
            continue;
        };
        let ids: Vec<u64> = client
            .core
            .completed
            .iter()
            .map(|o| o.request_id.0)
            .collect();
        for w in ids.windows(2) {
            if w[1] <= w[0] {
                anomalies.push(format!(
                    "pbft control: client {c} completed request {} after {}",
                    w[1], w[0]
                ));
            }
        }
        committed += ids.len() as u64;
    }
    (committed, anomalies)
}

/// Render a violation as a self-contained, reproducible report.
pub fn violation_report(outcome: &ChaosOutcome) -> String {
    let plan_json =
        serde_json::to_string(&outcome.plan).unwrap_or_else(|_| "<unserializable>".into());
    let mut s = format!(
        "chaos: SAFETY VIOLATION at seed {}\n\
         reproduce: cargo run -p neo-bench --bin chaos -- --seed {}\n\
         plan: {plan_json}\n",
        outcome.plan.seed, outcome.plan.seed
    );
    for v in &outcome.violations {
        s.push_str("  violation: ");
        s.push_str(v);
        s.push('\n');
    }
    // The tail of the merged event timeline: what the cluster was doing
    // right before the checker tripped.
    if let Some(flight) = &outcome.flight {
        const TAIL: usize = 40;
        let merged = flight.merged_events();
        let skipped = merged.len().saturating_sub(TAIL);
        if skipped > 0 {
            s.push_str(&format!(
                "  last {TAIL} of {} recorded events (full rings in the flight dump):\n",
                merged.len()
            ));
        } else {
            s.push_str(&format!("  last {} recorded events:\n", merged.len()));
        }
        for r in &merged[skipped..] {
            s.push_str(&format!(
                "    {:>12}ns  {:?}  {:?}\n",
                r.at, r.node, r.event
            ));
        }
    }
    s
}

/// One-line summary for sweep output.
pub fn summary_line(outcome: &ChaosOutcome) -> String {
    let recovered = if outcome.recovered_bases.is_empty() {
        String::new()
    } else {
        format!("  recovered@{:?}", outcome.recovered_bases)
    };
    format!(
        "seed {:>4}  batch {:>2}  committed {:>4}  dup {:>3}  tampered {:>3}  spiked {:>3}  \
         dropped {:>4}  byz {:>3}  ckpt {:>3}{recovered}  {}",
        outcome.plan.seed,
        outcome.plan.batch,
        outcome.committed,
        outcome.net.duplicated,
        outcome.net.tampered,
        outcome.net.delay_spiked,
        outcome.net.dropped(),
        outcome.byz_perturbed,
        outcome.checkpoints_certified,
        if outcome.violations.is_empty() {
            "ok"
        } else {
            "VIOLATION"
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        for seed in 0..16 {
            assert_eq!(generate_plan(seed), generate_plan(seed));
        }
        assert_ne!(generate_plan(1), generate_plan(2));
    }

    #[test]
    fn plans_round_trip_through_json() {
        for seed in 0..8 {
            let plan = generate_plan(seed);
            let json = serde_json::to_string(&plan).expect("serialize");
            let back: ChaosPlan = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(plan, back);
        }
    }

    #[test]
    fn first_rule_kind_cycles_through_all_four_faults() {
        // seed % 4 pins the first rule's kind: 0 = duplicate,
        // 1 = delay spike, 2 = tamper, 3 = partition.
        use neo_sim::FaultRule;
        let kinds: Vec<u32> = (0..4)
            .map(|seed| match generate_plan(seed).faults.rules()[0] {
                FaultRule::Duplicate { .. } => 0,
                FaultRule::DelaySpike { .. } => 1,
                FaultRule::Tamper { .. } => 2,
                FaultRule::Partition { .. } => 3,
                _ => 99,
            })
            .collect();
        assert_eq!(kinds, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chaos_clusters_fly_with_the_recorder_on() {
        // The recorder must capture events even though chaos never
        // enables full tracing elsewhere — and a clean run attaches no
        // flight dump to its outcome.
        let plan = generate_plan(0);
        let mut sim = build_cluster(&plan);
        sim.run_until(2 * MILLIS);
        let dump = sim.flight_dump("probe");
        assert!(
            dump.nodes.iter().any(|n| !n.events.is_empty()),
            "event rings recording"
        );
        assert!(
            dump.nodes.iter().any(|n| !n.packets.is_empty()),
            "packet rings recording"
        );
        let outcome = run_neo(&plan);
        assert!(outcome.violations.is_empty(), "seed 0 is a clean scenario");
        assert!(outcome.flight.is_none(), "no dump without a violation");
    }

    #[test]
    fn stop_hook_interrupts_with_a_sigint_dump() {
        let stop = std::sync::atomic::AtomicBool::new(true);
        let mut sink: Vec<u8> = Vec::new();
        let mut hooks = RunHooks {
            stop: Some(&stop),
            obs_out: Some(&mut sink),
            ..RunHooks::default()
        };
        let plan = generate_plan(0);
        let outcome = run_neo_with(&plan, &mut hooks);
        let flight = outcome.flight.expect("interrupted run dumps");
        assert_eq!(flight.reason, "sigint");
        assert_eq!(flight.context["seed"], "0");
        // One slice ran before the flag was seen: the stream holds one
        // valid ObsStreamLine per node.
        let lines: Vec<neo_sim::ObsStreamLine> = String::from_utf8(sink)
            .expect("utf8")
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid JSONL"))
            .collect();
        assert_eq!(lines.len(), N + plan.n_clients + 2, "nodes per slice");
        assert!(lines.iter().any(|l| !l.events.is_empty()));
    }

    #[test]
    fn telemetry_hook_publishes_every_node() {
        use neo_sim::TelemetryProvider;
        let hub = neo_sim::TelemetryHub::new();
        let mut hooks = RunHooks {
            telemetry: Some(&hub),
            ..RunHooks::default()
        };
        let plan = generate_plan(0);
        let outcome = run_neo_with(&plan, &mut hooks);
        assert!(outcome.violations.is_empty(), "seed 0 is clean");
        assert_eq!(hub.len(), N + plan.n_clients + 2, "one doc per node");
        let reports = hub.health();
        let replicas: Vec<_> = reports.iter().filter(|r| r.protocol.is_some()).collect();
        assert_eq!(replicas.len(), N, "every replica reports protocol health");
        assert!(replicas.iter().all(|r| r.healthy), "{reports:?}");
        assert!(
            replicas.iter().map(|r| r.committed).sum::<u64>() > 0,
            "commit events surface in the health docs"
        );
        // The scrape side renders the same publications.
        let body = neo_sim::render_prometheus(&hub.scrape());
        assert!(body.contains("neobft_replica_messages_in_total"), "{body}");
    }

    #[test]
    fn batch_size_cycles_with_the_seed() {
        assert_eq!(generate_plan(0).batch, 1);
        assert_eq!(generate_plan(1).batch, 4);
        assert_eq!(generate_plan(2).batch, 16);
        assert_eq!(generate_plan(3).batch, 1);
    }

    #[test]
    fn batched_scenarios_uphold_every_safety_invariant() {
        // Seeds 0..6 cover batch sizes 1, 4 and 16 twice each (and, via
        // seed % 4, all four fault kinds). The checker runs all five
        // invariants — committed-prefix agreement, monotone delivery,
        // execution agreement, sync ≤ commit, and no double execution —
        // at every slice boundary.
        for seed in 0..6 {
            let plan = generate_plan(seed);
            let outcome = run_neo(&plan);
            assert!(
                outcome.violations.is_empty(),
                "seed {seed} (batch {}): {:?}",
                plan.batch,
                outcome.violations
            );
            assert!(
                outcome.committed > 0,
                "seed {seed} (batch {}) commits nothing",
                plan.batch
            );
        }
    }

    #[test]
    fn pre_batching_plans_still_decode() {
        // Plans serialized before the batch field default to batch = 1.
        let mut v = serde_json::to_value(generate_plan(0)).expect("serialize");
        v.as_object_mut().expect("object").remove("batch");
        let plan: ChaosPlan = serde_json::from_value(v).expect("decode without batch");
        assert_eq!(plan.batch, 1);
    }

    #[test]
    fn odd_seeds_carry_a_byzantine_adapter() {
        assert!(generate_plan(0).byz.is_none());
        assert!(generate_plan(1).byz.is_some());
        assert!(generate_plan(2).byz.is_none());
        assert!(generate_plan(3).byz.is_some());
    }

    #[test]
    fn every_third_seed_crashes_and_restarts_a_correct_replica() {
        for seed in 0..12u64 {
            let plan = generate_plan(seed);
            let crashes = plan.faults.crash_restarts();
            if seed % 3 != 2 {
                assert!(crashes.is_empty(), "seed {seed} must not crash");
                continue;
            }
            assert_eq!(crashes.len(), 1, "seed {seed} carries one crash");
            let (addr, crash_at, restart_at) = crashes[0];
            // The victim is a correct replica: the Byzantine slot never
            // gets a disk, so it could not come back.
            if let Some(b) = &plan.byz {
                assert_ne!(addr, Addr::Replica(ReplicaId(b.replica)));
            }
            // The window heals with horizon to spare for recovery.
            assert!(crash_at >= HORIZON / 5 && crash_at < HORIZON / 2);
            assert!(restart_at > crash_at && restart_at <= 7 * HORIZON / 10);
        }
    }

    #[test]
    fn crash_restart_scenarios_recover_from_certified_checkpoints() {
        // Seed 2: a crash-restart plan over a durable cluster. The run
        // must stay safe, the crashed replica must rejoin through the
        // recovery handshake, and the evidence must be externally
        // visible: a non-zero recovery base (certified checkpoint, not
        // slot-0 replay), checkpoints certified, state replies served.
        let plan = generate_plan(2);
        let outcome = run_neo(&plan);
        assert!(
            outcome.violations.is_empty(),
            "{}",
            violation_report(&outcome)
        );
        assert!(outcome.committed > 0, "clients must make progress");
        assert_eq!(outcome.recovered_bases.len(), 1, "one restart, one base");
        assert!(
            outcome.recovered_bases[0] > 0,
            "restart must resume from a certified checkpoint, not slot 0"
        );
        assert!(outcome.checkpoints_certified > 0);
        assert!(outcome.state_replies_served > 0);
        let line = summary_line(&outcome);
        assert!(
            line.contains("recovered@"),
            "summary reports recovery: {line}"
        );
    }

    #[test]
    fn durable_seeds_without_crashes_still_certify_checkpoints() {
        // Every chaos replica is durable, so even crash-free seeds
        // exercise the capture → certify pipeline under faults.
        let outcome = run_neo(&generate_plan(0));
        assert!(outcome.violations.is_empty());
        assert!(outcome.checkpoints_certified > 0);
        assert!(outcome.recovered_bases.is_empty(), "seed 0 never crashes");
    }
}
