//! # neo-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§6). The `benches/` directory contains one target
//! per table/figure; each builds on [`harness`] — a protocol-generic
//! cluster runner over the deterministic simulator — and prints the same
//! rows/series the paper reports.
//!
//! Run all of them with `cargo bench -p neo-bench`, or a single one with
//! e.g. `cargo bench -p neo-bench --bench fig7`.

pub mod chaos;
pub mod compare;
pub mod harness;
pub mod report;
pub mod trace;

pub use chaos::{ByzAssignment, ChaosOutcome, ChaosPlan, RunHooks};
pub use compare::{compare, CompareConfig, CompareReport, Delta};
pub use harness::{AppKind, CopyReport, ObsReport, Protocol, RunConfig, RunParams, RunResult};
pub use report::{fmt_ops, fmt_us, phase_breakdown, Table};
pub use trace::{assemble, render_waterfall, RequestTimeline, TraceReport};
