//! Request-lifecycle span assembly and waterfall rendering.
//!
//! The obs layer gives us per-node [`EventRecord`]s; this module stitches
//! them into per-request timelines so a run can answer *where a request
//! spent its time*: client multicast → sequencer stamp → replica delivery
//! → speculative execution → reply → 2f+1 quorum at the client. Gap
//! agreement and view changes show up as tagged detours, matching the
//! paper's framing of the fast path versus its fallbacks.
//!
//! ## Span assembly rules
//!
//! * The client side of a span is keyed by `(client, request)`:
//!   [`Event::ClientSend`] opens it, [`Event::ClientCommit`] closes it.
//! * The replica side is keyed by log slot: `RequestReceived { slot }`,
//!   `SpeculativeExecute { slot }`. The join between the two sides is
//!   [`Event::Commit`], which carries `(slot, client, request)`.
//! * The sequencer stamp is keyed by aom sequence number. In the initial
//!   epoch `seq = slot + 1` (slots are 0-based, sequence numbers 1-based),
//!   which is how the assembler attributes stamps to slots. After an
//!   [`Event::EpochChange`] the per-epoch counter restarts and the rule no
//!   longer holds, so stamp attribution is disabled for the whole trace —
//!   the remaining phases stay correct.
//! * Replica-side milestones take the *earliest* observation across
//!   replicas: the waterfall shows the fastest replica's path, and the
//!   `reply → commit` phase absorbs the wait for the 2f+1 quorum.
//!
//! Under the deterministic simulator every event a handler emits shares
//! the handler's start time, so intra-handler phases (deliver → exec →
//! reply) can legitimately render as 0ns; the real runtime shows nonzero
//! durations there.

use neo_sim::obs::{Event, EventRecord, Histogram, HistogramSnapshot};
use neo_sim::Time;
use std::collections::BTreeMap;

/// Phase names, in request-lifecycle order. These are the keys of
/// [`TraceReport::phases`] and the rows of the waterfall.
pub const PHASES: [&str; 6] = [
    "send_to_stamp",
    "stamp_to_deliver",
    "deliver_to_exec",
    "exec_to_reply",
    "reply_to_commit",
    "total",
];

/// One request's assembled timeline. All times are virtual (or wall)
/// nanoseconds; a `None` milestone was not observed (evicted from a ring,
/// or the request never reached that stage).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct RequestTimeline {
    /// Issuing client.
    pub client: u64,
    /// Request number within the client.
    pub request: u64,
    /// Log slot the request committed into, if a replica reported one.
    pub slot: Option<u64>,
    /// Client issued the request (aom multicast).
    pub send: Option<Time>,
    /// Sequencer stamped the request's aom packet.
    pub stamp: Option<Time>,
    /// Earliest replica aom delivery into the slot.
    pub deliver: Option<Time>,
    /// Earliest speculative execution of the slot.
    pub exec: Option<Time>,
    /// Earliest reply issued for the request.
    pub reply: Option<Time>,
    /// Client collected its 2f+1 matching-reply quorum.
    pub commit: Option<Time>,
    /// The slot went through gap agreement (§5.4 detour).
    pub gap: bool,
    /// A view change overlapped the span.
    pub view_change: bool,
}

impl RequestTimeline {
    fn new(client: u64, request: u64) -> Self {
        RequestTimeline {
            client,
            request,
            slot: None,
            send: None,
            stamp: None,
            deliver: None,
            exec: None,
            reply: None,
            commit: None,
            gap: false,
            view_change: false,
        }
    }

    /// The lifecycle milestones in order, with display labels.
    pub fn milestones(&self) -> [(&'static str, Option<Time>); 6] {
        [
            ("client_send", self.send),
            ("sequencer_stamp", self.stamp),
            ("replica_deliver", self.deliver),
            ("speculative_exec", self.exec),
            ("reply_sent", self.reply),
            ("client_commit", self.commit),
        ]
    }

    /// Per-phase durations (ns), `None` where either endpoint is missing
    /// or the clock ran backwards (cross-node observation skew).
    pub fn phases(&self) -> [(&'static str, Option<u64>); 6] {
        let span = |a: Option<Time>, b: Option<Time>| match (a, b) {
            (Some(a), Some(b)) if b >= a => Some(b - a),
            _ => None,
        };
        [
            ("send_to_stamp", span(self.send, self.stamp)),
            ("stamp_to_deliver", span(self.stamp, self.deliver)),
            ("deliver_to_exec", span(self.deliver, self.exec)),
            ("exec_to_reply", span(self.exec, self.reply)),
            ("reply_to_commit", span(self.reply, self.commit)),
            ("total", span(self.send, self.commit)),
        ]
    }

    /// True when the span has both endpoints of the client lifecycle.
    pub fn committed(&self) -> bool {
        self.send.is_some() && self.commit.is_some()
    }
}

/// Stitch a merged, time-sorted event stream into per-request timelines,
/// ordered by `(client, request)`. Spans are opened by either side: a
/// `ClientSend` with no replica events still appears (uncommitted), and a
/// replica `Commit` whose `ClientSend` was evicted from the ring appears
/// with `send: None`.
pub fn assemble(events: &[EventRecord]) -> Vec<RequestTimeline> {
    // Pass 1: join keys. slot → (client, request) from replica Commits;
    // first Commit wins (replicas execute identical logs, so later ones
    // agree).
    let mut slot_req: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut epoch_changed = false;
    for r in events {
        match r.event {
            Event::Commit {
                slot,
                client,
                request,
            } => {
                slot_req.entry(slot).or_insert((client, request));
            }
            Event::EpochChange { .. } => epoch_changed = true,
            _ => {}
        }
    }

    // Pass 2: earliest observation per milestone.
    #[derive(Default)]
    struct SlotTimes {
        deliver: Option<Time>,
        exec: Option<Time>,
        reply: Option<Time>,
        gap: bool,
    }
    let mut slots: BTreeMap<u64, SlotTimes> = BTreeMap::new();
    let mut stamps: BTreeMap<u64, Time> = BTreeMap::new();
    let mut spans: BTreeMap<(u64, u64), RequestTimeline> = BTreeMap::new();
    let mut view_changes: Vec<Time> = Vec::new();
    let earliest = |cur: &mut Option<Time>, t: Time| {
        if cur.map(|c| t < c).unwrap_or(true) {
            *cur = Some(t);
        }
    };
    for r in events {
        match r.event {
            Event::ClientSend { client, request } => {
                let span = spans
                    .entry((client, request))
                    .or_insert_with(|| RequestTimeline::new(client, request));
                earliest(&mut span.send, r.at);
            }
            Event::ClientCommit { client, request } => {
                let span = spans
                    .entry((client, request))
                    .or_insert_with(|| RequestTimeline::new(client, request));
                earliest(&mut span.commit, r.at);
            }
            Event::SequencerStamp { seq } => {
                stamps.entry(seq).or_insert(r.at);
            }
            Event::RequestReceived { slot: Some(slot) } => {
                earliest(&mut slots.entry(slot).or_default().deliver, r.at);
            }
            Event::SpeculativeExecute { slot } => {
                earliest(&mut slots.entry(slot).or_default().exec, r.at);
            }
            Event::Commit { slot, .. } => {
                earliest(&mut slots.entry(slot).or_default().reply, r.at);
            }
            Event::GapFind { slot } | Event::GapCommit { slot, .. } => {
                slots.entry(slot).or_default().gap = true;
            }
            Event::ViewChange { .. } => view_changes.push(r.at),
            _ => {}
        }
    }

    // Pass 3: join replica-side slots into the client-side spans.
    for (slot, (client, request)) in &slot_req {
        let span = spans
            .entry((*client, *request))
            .or_insert_with(|| RequestTimeline::new(*client, *request));
        // First (lowest) slot wins for a re-executed request.
        if span.slot.is_some() {
            continue;
        }
        span.slot = Some(*slot);
        if let Some(st) = slots.get(slot) {
            span.deliver = st.deliver;
            span.exec = st.exec;
            span.reply = st.reply;
            span.gap = st.gap;
        }
        if !epoch_changed {
            span.stamp = stamps.get(&(slot + 1)).copied();
        }
    }
    for span in spans.values_mut() {
        let start = span.send.or(span.deliver);
        let end = span.commit;
        span.view_change |= view_changes.iter().any(|vc| {
            start.map(|s| *vc >= s).unwrap_or(false) && end.map(|e| *vc <= e).unwrap_or(true)
        });
    }
    spans.into_values().collect()
}

/// Per-phase latency tables assembled from a run's event trace, reported
/// in `RunResult`/BENCH JSON next to the end-to-end numbers.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct TraceReport {
    /// Requests observed in the trace (either side of the span).
    pub requests: u64,
    /// Requests with a complete client lifecycle (send and commit).
    pub committed: u64,
    /// Requests whose slot went through gap agreement.
    pub gap_detours: u64,
    /// Requests overlapped by a view change.
    pub view_change_detours: u64,
    /// Per-phase latency histograms (p50/p90/p99 and sparse buckets),
    /// keyed by [`PHASES`] names. Only observed phases appear.
    pub phases: BTreeMap<String, HistogramSnapshot>,
}

impl TraceReport {
    /// Assemble spans from `events` and fold their phases into
    /// histograms.
    pub fn from_events(events: &[EventRecord]) -> TraceReport {
        let spans = assemble(events);
        let mut phases: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for span in &spans {
            for (name, dur) in span.phases() {
                if let Some(d) = dur {
                    phases.entry(name).or_default().observe(d);
                }
            }
        }
        TraceReport {
            requests: spans.len() as u64,
            committed: spans.iter().filter(|s| s.committed()).count() as u64,
            gap_detours: spans.iter().filter(|s| s.gap).count() as u64,
            view_change_detours: spans.iter().filter(|s| s.view_change).count() as u64,
            phases: phases
                .into_iter()
                .map(|(k, h)| (k.to_string(), h.snapshot()))
                .collect(),
        }
    }
}

/// Format nanoseconds for humans: `850ns`, `12.3µs`, `4.56ms`, `1.20s`.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Render one request's timeline as a text waterfall. Each milestone row
/// shows the offset from the span start, the duration of the phase that
/// led to it, and a proportional bar; detours are tagged at the bottom.
pub fn render_waterfall(span: &RequestTimeline) -> String {
    let mut out = String::new();
    let slot = span
        .slot
        .map(|s| format!(" (slot {s})"))
        .unwrap_or_default();
    out.push_str(&format!(
        "request {}:{}{}\n",
        span.client, span.request, slot
    ));
    let observed: Vec<(&'static str, Time)> = span
        .milestones()
        .iter()
        .filter_map(|(name, t)| t.map(|t| (*name, t)))
        .collect();
    if observed.is_empty() {
        out.push_str("  (no milestones observed)\n");
        return out;
    }
    let start = observed[0].1;
    let end = observed[observed.len() - 1].1;
    let total = end - start;
    const BAR: u64 = 40;
    let mut prev: Option<Time> = None;
    for (name, t) in &observed {
        let offset = t - start;
        let phase = prev.map(|p| t.saturating_sub(p));
        let bar_len = if total == 0 {
            0
        } else {
            (phase.unwrap_or(0).saturating_mul(BAR) / total).min(BAR)
        };
        let phase_str = phase.map(|p| format!("+{}", fmt_ns(p))).unwrap_or_default();
        out.push_str(&format!(
            "  {:>10}  {:10}  {:18}{}\n",
            fmt_ns(offset),
            phase_str,
            name,
            "#".repeat(bar_len as usize),
        ));
        prev = Some(*t);
    }
    out.push_str(&format!("  total {}", fmt_ns(total)));
    if span.gap {
        out.push_str("  [gap agreement]");
    }
    if span.view_change {
        out.push_str("  [view change]");
    }
    if !span.committed() {
        out.push_str("  [incomplete]");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::{Addr, ClientId, ReplicaId};

    fn rec(at: Time, node: Addr, event: Event) -> EventRecord {
        EventRecord { at, node, event }
    }

    fn fast_path_events() -> Vec<EventRecord> {
        let client = Addr::Client(ClientId(3));
        let seq = Addr::Sequencer(neo_wire::GroupId(0));
        let r0 = Addr::Replica(ReplicaId(0));
        let r1 = Addr::Replica(ReplicaId(1));
        vec![
            rec(
                100,
                client,
                Event::ClientSend {
                    client: 3,
                    request: 7,
                },
            ),
            rec(200, seq, Event::SequencerStamp { seq: 5 }),
            rec(300, r0, Event::RequestReceived { slot: Some(4) }),
            rec(310, r1, Event::RequestReceived { slot: Some(4) }),
            rec(400, r0, Event::SpeculativeExecute { slot: 4 }),
            rec(
                500,
                r0,
                Event::Commit {
                    slot: 4,
                    client: 3,
                    request: 7,
                },
            ),
            rec(
                520,
                r1,
                Event::Commit {
                    slot: 4,
                    client: 3,
                    request: 7,
                },
            ),
            rec(
                800,
                client,
                Event::ClientCommit {
                    client: 3,
                    request: 7,
                },
            ),
        ]
    }

    #[test]
    fn fast_path_span_assembles_every_phase() {
        let spans = assemble(&fast_path_events());
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!((s.client, s.request, s.slot), (3, 7, Some(4)));
        assert_eq!(s.send, Some(100));
        assert_eq!(s.stamp, Some(200), "stamp joined via seq = slot + 1");
        assert_eq!(s.deliver, Some(300), "earliest replica wins");
        assert_eq!(s.exec, Some(400));
        assert_eq!(s.reply, Some(500), "earliest reply wins");
        assert_eq!(s.commit, Some(800));
        assert!(s.committed());
        assert!(!s.gap && !s.view_change);
        let phases: BTreeMap<_, _> = s.phases().into_iter().collect();
        assert_eq!(phases["send_to_stamp"], Some(100));
        assert_eq!(phases["stamp_to_deliver"], Some(100));
        assert_eq!(phases["deliver_to_exec"], Some(100));
        assert_eq!(phases["exec_to_reply"], Some(100));
        assert_eq!(phases["reply_to_commit"], Some(300));
        assert_eq!(phases["total"], Some(700));
    }

    #[test]
    fn gap_and_view_change_are_tagged_detours() {
        let mut events = fast_path_events();
        events.push(rec(
            350,
            Addr::Replica(ReplicaId(2)),
            Event::GapFind { slot: 4 },
        ));
        events.push(rec(
            600,
            Addr::Replica(ReplicaId(2)),
            Event::ViewChange { view: 1 },
        ));
        let spans = assemble(&events);
        assert!(spans[0].gap);
        assert!(spans[0].view_change);
        let report = TraceReport::from_events(&events);
        assert_eq!(report.gap_detours, 1);
        assert_eq!(report.view_change_detours, 1);
    }

    #[test]
    fn epoch_change_disables_stamp_attribution() {
        let mut events = fast_path_events();
        events.push(rec(
            50,
            Addr::Replica(ReplicaId(0)),
            Event::EpochChange { epoch: 1 },
        ));
        let spans = assemble(&events);
        assert_eq!(spans[0].stamp, None, "seq = slot + 1 no longer holds");
        assert_eq!(spans[0].deliver, Some(300), "other phases unaffected");
    }

    #[test]
    fn orphan_sides_still_produce_spans() {
        // A replica Commit whose ClientSend was evicted from the ring, and
        // a ClientSend that never committed.
        let events = vec![
            rec(
                10,
                Addr::Replica(ReplicaId(0)),
                Event::Commit {
                    slot: 0,
                    client: 1,
                    request: 1,
                },
            ),
            rec(
                20,
                Addr::Client(ClientId(2)),
                Event::ClientSend {
                    client: 2,
                    request: 9,
                },
            ),
        ];
        let spans = assemble(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].send, None);
        assert_eq!(spans[0].reply, Some(10));
        assert!(!spans[0].committed());
        assert_eq!(spans[1].send, Some(20));
        assert_eq!(spans[1].slot, None);
    }

    #[test]
    fn report_histograms_cover_committed_requests() {
        let mut events = Vec::new();
        for i in 0..10u64 {
            let base = i * 10_000;
            events.push(rec(
                base,
                Addr::Client(ClientId(0)),
                Event::ClientSend {
                    client: 0,
                    request: i + 1,
                },
            ));
            events.push(rec(
                base + 100,
                Addr::Replica(ReplicaId(0)),
                Event::RequestReceived { slot: Some(i) },
            ));
            events.push(rec(
                base + 200,
                Addr::Replica(ReplicaId(0)),
                Event::Commit {
                    slot: i,
                    client: 0,
                    request: i + 1,
                },
            ));
            events.push(rec(
                base + 1_000,
                Addr::Client(ClientId(0)),
                Event::ClientCommit {
                    client: 0,
                    request: i + 1,
                },
            ));
        }
        let report = TraceReport::from_events(&events);
        assert_eq!(report.requests, 10);
        assert_eq!(report.committed, 10);
        let total = &report.phases["total"];
        assert_eq!(total.count, 10);
        assert_eq!(total.min, 1_000);
        assert!(report.phases["reply_to_commit"].count == 10);
        assert!(
            !report.phases.contains_key("send_to_stamp"),
            "unobserved phases stay absent"
        );
    }

    #[test]
    fn waterfall_renders_phases_and_tags() {
        let spans = assemble(&fast_path_events());
        let text = render_waterfall(&spans[0]);
        assert!(text.contains("request 3:7 (slot 4)"));
        assert!(text.contains("client_send"));
        assert!(text.contains("sequencer_stamp"));
        assert!(text.contains("replica_deliver"));
        assert!(text.contains("speculative_exec"));
        assert!(text.contains("reply_sent"));
        assert!(text.contains("client_commit"));
        assert!(text.contains("total 700ns"));
        assert!(!text.contains("[incomplete]"));
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(850), "850ns");
        assert_eq!(fmt_ns(12_300), "12.3µs");
        assert_eq!(fmt_ns(4_560_000), "4.56ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
