//! Protocol-generic experiment runner.
//!
//! Builds a full deployment (replicas, clients, and for NeoBFT the
//! config service + sequencer) in the deterministic simulator, runs it
//! with closed-loop clients for a warm-up plus a measurement window, and
//! reports throughput and latency over the window — the methodology of
//! §6.2 ("an increasing number of closed-loop clients").

use neo_aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neo_app::{App, EchoApp, EchoWorkload, KvApp, Workload, YcsbConfig, YcsbGenerator};
use neo_baselines::zyzzyva::ZyzzyvaBehavior;
use neo_baselines::{
    BaselineConfig, HotStuffClient, HotStuffReplica, MinBftClient, MinBftReplica, PbftClient,
    PbftReplica, UnreplicatedClient, UnreplicatedServer, ZyzzyvaClient, ZyzzyvaReplica,
};
use neo_core::{BatchPolicy, Client, CompletedOp, NeoConfig, Replica};
use neo_crypto::{CostModel, SystemKeys};
use neo_sim::obs::{MetricsSnapshot, ObsConfig};
use neo_sim::{CpuConfig, FaultPlan, NetConfig, SimConfig, Simulator, MILLIS, SECS};
use neo_switch::{FpgaModel, TofinoModel};
use neo_wire::{Addr, ClientId, GroupId, ReplicaId};

/// The aom group used by all NeoBFT experiments.
pub const GROUP: GroupId = GroupId(0);

/// Protocols under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protocol {
    /// NeoBFT over aom-hm (Tofino switch model).
    NeoHm,
    /// NeoBFT over aom-pk (FPGA coprocessor model).
    NeoPk,
    /// NeoBFT over aom-hm tolerating a Byzantine network (confirms).
    NeoBn,
    /// NeoBFT over a software sequencer (the §6.3 EC2 deployment).
    NeoHmSoftware,
    /// NeoBFT aom-pk over a software sequencer.
    NeoPkSoftware,
    /// PBFT.
    Pbft,
    /// Zyzzyva, all replicas correct (fast path).
    Zyzzyva,
    /// Zyzzyva with one non-responsive Byzantine replica (slow path).
    ZyzzyvaF,
    /// Chained HotStuff.
    HotStuff,
    /// MinBFT (2f+1 replicas, USIG).
    MinBft,
    /// Unreplicated single server.
    Unreplicated,
}

impl Protocol {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::NeoHm => "Neo-HM",
            Protocol::NeoPk => "Neo-PK",
            Protocol::NeoBn => "Neo-BN",
            Protocol::NeoHmSoftware => "Neo-HM(sw)",
            Protocol::NeoPkSoftware => "Neo-PK(sw)",
            Protocol::Pbft => "PBFT",
            Protocol::Zyzzyva => "Zyzzyva",
            Protocol::ZyzzyvaF => "Zyzzyva-F",
            Protocol::HotStuff => "HotStuff",
            Protocol::MinBft => "MinBFT",
            Protocol::Unreplicated => "Unreplicated",
        }
    }

    /// Every protocol compared in Figure 7 / Figure 10.
    pub fn comparison_set() -> &'static [Protocol] {
        &[
            Protocol::Unreplicated,
            Protocol::NeoHm,
            Protocol::NeoPk,
            Protocol::NeoBn,
            Protocol::Zyzzyva,
            Protocol::ZyzzyvaF,
            Protocol::Pbft,
            Protocol::HotStuff,
            Protocol::MinBft,
        ]
    }
}

/// Which application/workload drives the run.
#[derive(Clone, Copy, Debug)]
pub enum AppKind {
    /// Echo RPC with fixed-size random payloads (§6.2).
    Echo {
        /// Payload size in bytes.
        size: usize,
    },
    /// YCSB over the B-Tree KV store (§6.5).
    Ycsb(YcsbConfig),
}

impl AppKind {
    fn build_app(&self) -> Box<dyn App> {
        match self {
            AppKind::Echo { .. } => Box::new(EchoApp::new()),
            AppKind::Ycsb(cfg) => Box::new(KvApp::loaded(cfg.record_count, cfg.field_len)),
        }
    }

    fn build_workload(&self, salt: u64) -> Box<dyn Workload> {
        match self {
            AppKind::Echo { size } => Box::new(EchoWorkload::new(*size, salt)),
            AppKind::Ycsb(cfg) => Box::new(YcsbGenerator::new(*cfg, salt)),
        }
    }
}

/// Default per-node event-trace ring size for harness runs: deep enough
/// that a measurement window's requests survive to span assembly (each
/// request emits a handful of events per node), shallow enough to keep a
/// sweep's memory bounded. Rings keep the most recent records, so on
/// overflow the report simply covers the tail of the run.
pub const DEFAULT_TRACE_CAPACITY: usize = 32_768;

/// Parameters of one experiment run.
#[derive(Clone, Debug)]
pub struct RunParams {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Fault bound (replica count follows the protocol's rule).
    pub f: usize,
    /// Closed-loop clients.
    pub n_clients: usize,
    /// Application + workload.
    pub app: AppKind,
    /// Warm-up window excluded from measurement.
    pub warmup: u64,
    /// Measurement window.
    pub measure: u64,
    /// Network model.
    pub net: NetConfig,
    /// Crypto cost model.
    pub costs: CostModel,
    /// Replica CPU model.
    pub server_cpu: CpuConfig,
    /// Client CPU model.
    pub client_cpu: CpuConfig,
    /// RNG seed.
    pub seed: u64,
    /// Targeted fault plan.
    pub faults: FaultPlan,
    /// Override HotStuff's pacemaker interval (Table 1 measures pure
    /// message delays with a near-zero batching window).
    pub hotstuff_interval_ns: Option<u64>,
    /// Per-node observability configuration (metrics on by default; the
    /// numbers reported by the harness are virtual-time and unaffected).
    pub obs: ObsConfig,
    /// Client-side request batching. For NeoBFT the policy configures
    /// the [`neo_core::ClientDriver`] (and enables pipelined speculative
    /// verification on the replicas); for the baselines a multi-op
    /// policy raises their `batch_max` so the control stays comparable.
    pub batch: BatchPolicy,
    /// Verify-stage lane override (NeoBFT only). `None` follows the
    /// batch policy's default; `Some(0)` forces the serial lane;
    /// `Some(w)` forces the pipelined lane with `w` modeled verify
    /// workers (the replica CPU's worker-core count is set to `w`, the
    /// axis swept by `verify_sweep`). The simulator models the pool
    /// with the meter — `NeoConfig::verify_workers` stays 0 so runs
    /// remain deterministic.
    pub verify_lane: Option<usize>,
}

impl RunParams {
    /// Defaults mirroring the paper's testbed: f = 1, echo RPC, 64-byte
    /// requests, calibrated costs, server/client CPU models.
    pub fn new(protocol: Protocol, n_clients: usize) -> Self {
        RunParams {
            protocol,
            f: 1,
            n_clients,
            app: AppKind::Echo { size: 64 },
            warmup: 100 * MILLIS,
            measure: 400 * MILLIS,
            net: NetConfig::DATACENTER,
            costs: CostModel::CALIBRATED,
            server_cpu: CpuConfig::SERVER,
            client_cpu: CpuConfig::CLIENT,
            seed: 42,
            faults: FaultPlan::none(),
            hotstuff_interval_ns: None,
            obs: ObsConfig::default().with_trace(DEFAULT_TRACE_CAPACITY),
            batch: BatchPolicy::SINGLE,
            verify_lane: None,
        }
    }

    /// Replica count for this protocol and f.
    pub fn n_replicas(&self) -> usize {
        match self.protocol {
            Protocol::MinBft => 2 * self.f + 1,
            Protocol::Unreplicated => 1,
            _ => 3 * self.f + 1,
        }
    }
}

/// Per-phase observability snapshots gathered from a run, serialized
/// into the JSON reports next to the latency/throughput numbers.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct ObsReport {
    /// Merge of every node's metrics (replicas, clients, services).
    pub aggregate: MetricsSnapshot,
    /// Per-replica snapshots, indexed by replica id.
    pub replicas: Vec<MetricsSnapshot>,
}

/// Payload copy/allocation accounting over one run's window, derived
/// from the process-wide [`neo_wire::PayloadStats`] counters. Makes
/// copy regressions visible in `BENCH_*.json`: a fan-out that encodes
/// per destination shows up as a jump in `allocs_per_op`.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct CopyReport {
    /// Payload buffers allocated (one per encoded wire message).
    pub payload_allocations: u64,
    /// Bytes copied into payload buffers.
    pub payload_bytes: u64,
    /// Payload refcount bumps (broadcast fan-out and reply caching).
    pub payload_clones: u64,
    /// Bytes copied into payloads per committed op.
    pub bytes_per_op: f64,
    /// Payload allocations per committed op.
    pub allocs_per_op: f64,
}

impl CopyReport {
    /// Build from a windowed counter delta and the ops committed in it.
    pub fn from_delta(delta: neo_wire::PayloadStats, committed: u64) -> CopyReport {
        let per = |v: u64| {
            if committed == 0 {
                0.0
            } else {
                v as f64 / committed as f64
            }
        };
        CopyReport {
            payload_allocations: delta.allocations,
            payload_bytes: delta.allocated_bytes,
            payload_clones: delta.clones,
            bytes_per_op: per(delta.allocated_bytes),
            allocs_per_op: per(delta.allocations),
        }
    }
}

/// Measured outcome of one run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RunResult {
    /// Ops committed inside the measurement window.
    pub committed: u64,
    /// Throughput over the window (ops/sec).
    pub throughput: f64,
    /// Mean end-to-end latency (ns) over the window.
    pub mean_latency_ns: u64,
    /// Median latency (ns).
    pub p50_latency_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_latency_ns: u64,
    /// All measured latencies (for CDFs).
    #[serde(skip)]
    pub latencies_ns: Vec<u64>,
    /// Phase breakdown: event counters, named counters, and latency
    /// histograms, per replica and aggregated.
    pub obs: ObsReport,
    /// Payload bytes-copied / allocation accounting over the run.
    pub copy: CopyReport,
    /// Per-request lifecycle spans assembled from the event trace:
    /// per-phase latency histograms (send → stamp → deliver → exec →
    /// reply → commit). `None` when tracing was disabled for the run.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trace: Option<crate::trace::TraceReport>,
}

impl RunResult {
    fn from_ops(ops: &[CompletedOp], window_start: u64, window_end: u64) -> RunResult {
        let mut lats: Vec<u64> = ops
            .iter()
            .filter(|o| o.completed_at >= window_start && o.completed_at < window_end)
            .map(|o| o.latency_ns())
            .collect();
        lats.sort_unstable();
        let committed = lats.len() as u64;
        let dur_s = (window_end - window_start) as f64 / 1e9;
        let pct = |p: f64| -> u64 {
            if lats.is_empty() {
                0
            } else {
                lats[((p * (lats.len() - 1) as f64) as usize).min(lats.len() - 1)]
            }
        };
        RunResult {
            committed,
            throughput: committed as f64 / dur_s,
            mean_latency_ns: if lats.is_empty() {
                0
            } else {
                lats.iter().sum::<u64>() / lats.len() as u64
            },
            p50_latency_ns: pct(0.5),
            p99_latency_ns: pct(0.99),
            latencies_ns: lats,
            obs: ObsReport::default(),
            copy: CopyReport::default(),
            trace: None,
        }
    }
}

/// Execute one experiment.
pub fn run_experiment(params: &RunParams) -> RunResult {
    let mut sim = build(params);
    let end = params.warmup + params.measure;
    // Window the process-wide payload counters around the run; tests
    // running in parallel can inflate the window, so the report is a
    // diagnostic, not an exact assertion target.
    let before = neo_wire::PayloadStats::snapshot();
    let events = sim.run_until(end);
    if std::env::var_os("NEO_BENCH_DEBUG").is_some() {
        eprintln!("[debug] {events} events");
    }
    let delta = neo_wire::PayloadStats::snapshot().since(&before);
    let mut result = collect(&sim, params);
    result.copy = CopyReport::from_delta(delta, result.committed);
    result
}

/// Build the simulator for an experiment without running it (failover
/// experiments drive it in phases).
pub fn build(params: &RunParams) -> Simulator {
    let n = params.n_replicas();
    let keys = SystemKeys::new(params.seed, n, params.n_clients);
    let mut sim = Simulator::new(SimConfig {
        net: params.net,
        default_cpu: params.server_cpu,
        seed: params.seed,
        faults: params.faults.clone(),
    });
    sim.set_obs(params.obs);

    match params.protocol {
        Protocol::NeoHm
        | Protocol::NeoPk
        | Protocol::NeoBn
        | Protocol::NeoHmSoftware
        | Protocol::NeoPkSoftware => build_neo(params, n, &keys, &mut sim),
        Protocol::Pbft => build_baseline(params, n, &keys, &mut sim, BaselineKind::Pbft),
        Protocol::Zyzzyva => build_baseline(
            params,
            n,
            &keys,
            &mut sim,
            BaselineKind::Zyzzyva { mute: false },
        ),
        Protocol::ZyzzyvaF => build_baseline(
            params,
            n,
            &keys,
            &mut sim,
            BaselineKind::Zyzzyva { mute: true },
        ),
        Protocol::HotStuff => build_baseline(params, n, &keys, &mut sim, BaselineKind::HotStuff),
        Protocol::MinBft => build_baseline(params, n, &keys, &mut sim, BaselineKind::MinBft),
        Protocol::Unreplicated => {
            sim.add_node(
                Addr::Replica(ReplicaId(0)),
                Box::new(UnreplicatedServer::new(params.app.build_app())),
            );
            for c in 0..params.n_clients as u64 {
                let client = UnreplicatedClient::new(
                    ClientId(c),
                    ReplicaId(0),
                    params.app.build_workload(c + 1),
                    50 * MILLIS,
                );
                sim.add_node_with_cpu(
                    Addr::Client(ClientId(c)),
                    Box::new(client),
                    params.client_cpu,
                );
            }
        }
    }
    sim
}

fn neo_config(params: &RunParams) -> NeoConfig {
    let mut cfg = NeoConfig::new(params.f);
    match params.protocol {
        Protocol::NeoPk | Protocol::NeoPkSoftware => {
            cfg = cfg.with_pk();
        }
        Protocol::NeoBn => {
            cfg = cfg.with_byzantine_network();
        }
        _ => {}
    }
    if matches!(
        params.protocol,
        Protocol::NeoHmSoftware | Protocol::NeoPkSoftware
    ) {
        // §6.3: with the software sequencer replicas process one packet
        // per subgroup per request.
        cfg.emulate_hm_subgroups = matches!(params.protocol, Protocol::NeoHmSoftware);
    }
    cfg = cfg.with_batch(params.batch);
    match params.verify_lane {
        None => {}
        Some(0) => cfg.pipeline_verify = false,
        Some(_) => cfg.pipeline_verify = true,
    }
    cfg
}

/// Replica CPU for a run: the verify-lane override pins the worker-core
/// count to the swept worker count so `charge_parallel` tasks spread
/// over exactly `w` modeled verify workers.
fn replica_cpu(params: &RunParams) -> CpuConfig {
    match params.verify_lane {
        Some(w) => CpuConfig {
            cores: w.max(1),
            ..params.server_cpu
        },
        None => params.server_cpu,
    }
}

fn build_neo(params: &RunParams, n: usize, keys: &SystemKeys, sim: &mut Simulator) {
    let cfg = neo_config(params);

    let mut config = ConfigService::new();
    config.register_group(GROUP, (0..n as u32).map(ReplicaId).collect(), params.f);
    sim.add_node_with_cpu(Addr::Config, Box::new(config), CpuConfig::IDEAL);

    let (auth_mode, hw) = match params.protocol {
        Protocol::NeoHm | Protocol::NeoBn => (
            AuthMode::HmacVector,
            SequencerHw::Tofino(TofinoModel::PAPER),
        ),
        Protocol::NeoPk => (
            AuthMode::PublicKey,
            SequencerHw::Fpga(
                FpgaModel::PAPER,
                neo_switch::fpga::SigningRatioController::new(FpgaModel::PAPER),
            ),
        ),
        Protocol::NeoHmSoftware => (AuthMode::HmacVector, SequencerHw::Software(params.costs)),
        Protocol::NeoPkSoftware => {
            // Software sequencer signing in software: model it as a
            // "coprocessor" whose rates reflect one CPU core with
            // precomputed-table signing, plus the hash-chain skip path.
            // Signing is pipelined off the dispatch path (a dedicated
            // signer thread); its *rate* is bounded by the signing-ratio
            // controller, and skipped packets ride the hash chain.
            let model = FpgaModel {
                io_latency_ns: 0,
                hash_latency_ns: 300,
                sign_latency_ns: params.costs.ecdsa_sign,
                sign_service_ns: 600,
                precompute_rate_per_sec: 1_000_000_000 / params.costs.ecdsa_sign.max(1),
                table_capacity: 1024,
                skip_threshold: 64,
            };
            (
                AuthMode::PublicKey,
                SequencerHw::Fpga(model, neo_switch::fpga::SigningRatioController::new(model)),
            )
        }
        _ => unreachable!("neo build called for a baseline"),
    };
    let sequencer = SequencerNode::new(
        GROUP,
        (0..n as u32).map(ReplicaId).collect(),
        auth_mode,
        hw,
        keys,
    );
    // The sequencer is a switch (or a dedicated multicast service in the
    // software deployment): its occupancy is charged via the hardware
    // model, not a server CPU.
    let seq_cpu = CpuConfig {
        dispatch_ns: 0,
        send_ns: 5, // per-copy replication-engine cost (drives the
        // gentle large-group decline in Figure 8)
        ns_per_kb: 0,
        cores: 1,
    };
    sim.add_node_with_cpu(Addr::Sequencer(GROUP), Box::new(sequencer), seq_cpu);

    for r in 0..n as u32 {
        let replica = Replica::new(
            ReplicaId(r),
            cfg.clone(),
            keys,
            params.costs,
            params.app.build_app(),
        );
        sim.add_node_with_cpu(
            Addr::Replica(ReplicaId(r)),
            Box::new(replica),
            replica_cpu(params),
        );
    }
    for c in 0..params.n_clients as u64 {
        let client = Client::new(
            ClientId(c),
            cfg.clone(),
            keys,
            params.costs,
            params.app.build_workload(c + 1),
        );
        sim.add_node_with_cpu(
            Addr::Client(ClientId(c)),
            Box::new(client),
            params.client_cpu,
        );
    }
}

enum BaselineKind {
    Pbft,
    Zyzzyva { mute: bool },
    HotStuff,
    MinBft,
}

fn build_baseline(
    params: &RunParams,
    n: usize,
    keys: &SystemKeys,
    sim: &mut Simulator,
    kind: BaselineKind,
) {
    // Batching follows each protocol's original tuning (§6: "following
    // the batching techniques proposed in their original work"): PBFT
    // opens small adaptive batches; MinBFT batches per USIG-paced
    // prepare; HotStuff fills large blocks paced by its pacemaker.
    let mut cfg = match kind {
        BaselineKind::MinBft => BaselineConfig::new_2f1(params.f),
        _ => BaselineConfig::new_3f1(params.f),
    };
    match kind {
        BaselineKind::Pbft => {
            cfg.batch_max = 8;
        }
        BaselineKind::MinBft => {
            cfg.batch_max = 8;
            cfg.usig_cost_ns = 30_000;
        }
        BaselineKind::HotStuff => {
            cfg.batch_max = 48;
            cfg.pipeline_depth = 2;
            cfg.proposal_interval_ns = params.hotstuff_interval_ns.unwrap_or(500 * neo_sim::MICROS);
        }
        BaselineKind::Zyzzyva { .. } => {
            cfg.batch_max = 16;
        }
    }
    // An explicit batch policy overrides each protocol's default tuning,
    // so a batch-size sweep compares like against like.
    if params.batch.max_batch > 1 {
        cfg.batch_max = params.batch.max_batch;
    }
    // Pure-logic runs (free crypto) also zero the trusted-component cost.
    if params.costs == CostModel::FREE {
        cfg.usig_cost_ns = 0;
    }
    for r in 0..n as u32 {
        let id = ReplicaId(r);
        let app = params.app.build_app();
        let node: Box<dyn neo_sim::Node> = match kind {
            BaselineKind::Pbft => {
                Box::new(PbftReplica::new(id, cfg.clone(), keys, params.costs, app))
            }
            BaselineKind::Zyzzyva { mute } => {
                let mut z = ZyzzyvaReplica::new(id, cfg.clone(), keys, params.costs, app);
                if mute && r == n as u32 - 1 {
                    z.behavior = ZyzzyvaBehavior::Mute;
                }
                Box::new(z)
            }
            BaselineKind::HotStuff => Box::new(HotStuffReplica::new(
                id,
                cfg.clone(),
                keys,
                params.costs,
                app,
            )),
            BaselineKind::MinBft => {
                Box::new(MinBftReplica::new(id, cfg.clone(), keys, params.costs, app))
            }
        };
        sim.add_node_with_cpu(Addr::Replica(id), node, params.server_cpu);
    }
    for c in 0..params.n_clients as u64 {
        let id = ClientId(c);
        let w = params.app.build_workload(c + 1);
        let node: Box<dyn neo_sim::Node> = match kind {
            BaselineKind::Pbft => Box::new(PbftClient::new(id, cfg.clone(), keys, params.costs, w)),
            BaselineKind::Zyzzyva { .. } => {
                Box::new(ZyzzyvaClient::new(id, cfg.clone(), keys, params.costs, w))
            }
            BaselineKind::HotStuff => {
                Box::new(HotStuffClient::new(id, cfg.clone(), keys, params.costs, w))
            }
            BaselineKind::MinBft => {
                Box::new(MinBftClient::new(id, cfg.clone(), keys, params.costs, w))
            }
        };
        sim.add_node_with_cpu(Addr::Client(id), node, params.client_cpu);
    }
}

/// Gather results from all clients over the measurement window.
pub fn collect(sim: &Simulator, params: &RunParams) -> RunResult {
    let mut ops: Vec<CompletedOp> = Vec::new();
    for c in 0..params.n_clients as u64 {
        let addr = Addr::Client(ClientId(c));
        let completed: &[CompletedOp] = match params.protocol {
            Protocol::NeoHm
            | Protocol::NeoPk
            | Protocol::NeoBn
            | Protocol::NeoHmSoftware
            | Protocol::NeoPkSoftware => &sim.node_ref::<Client>(addr).expect("client").completed,
            Protocol::Pbft => {
                &sim.node_ref::<PbftClient>(addr)
                    .expect("client")
                    .core
                    .completed
            }
            Protocol::Zyzzyva | Protocol::ZyzzyvaF => {
                &sim.node_ref::<ZyzzyvaClient>(addr)
                    .expect("client")
                    .core
                    .completed
            }
            Protocol::HotStuff => {
                &sim.node_ref::<HotStuffClient>(addr)
                    .expect("client")
                    .core
                    .completed
            }
            Protocol::MinBft => {
                &sim.node_ref::<MinBftClient>(addr)
                    .expect("client")
                    .core
                    .completed
            }
            Protocol::Unreplicated => {
                &sim.node_ref::<UnreplicatedClient>(addr)
                    .expect("client")
                    .core
                    .completed
            }
        };
        ops.extend_from_slice(completed);
    }
    let mut result = RunResult::from_ops(&ops, params.warmup, params.warmup + params.measure);
    result.obs = ObsReport {
        aggregate: sim.aggregate_metrics(),
        replicas: (0..params.n_replicas())
            .map(|r| {
                sim.metrics_snapshot(Addr::Replica(ReplicaId(r as u32)))
                    .unwrap_or_default()
            })
            .collect(),
    };
    if params.obs.trace_capacity > 0 {
        result.trace = Some(crate::trace::TraceReport::from_events(&sim.trace_records()));
    }
    result
}

/// Sweep client counts and return the (throughput, mean latency) curve —
/// the Figure 7 methodology.
pub fn latency_throughput_curve(
    protocol: Protocol,
    client_counts: &[usize],
    app: AppKind,
) -> Vec<(usize, RunResult)> {
    client_counts
        .iter()
        .map(|&c| {
            let mut p = RunParams::new(protocol, c);
            p.app = app;
            (c, run_experiment(&p))
        })
        .collect()
}

/// Maximum sustainable throughput over a client sweep.
pub fn max_throughput(protocol: Protocol, client_counts: &[usize], app: AppKind) -> RunResult {
    latency_throughput_curve(protocol, client_counts, app)
        .into_iter()
        .map(|(_, r)| r)
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .expect("non-empty sweep")
}

/// Messages processed by replica `r` (Table 1's bottleneck-complexity
/// instrumentation).
pub fn replica_messages(sim: &Simulator, params: &RunParams, r: u32) -> u64 {
    let addr = Addr::Replica(ReplicaId(r));
    match params.protocol {
        Protocol::NeoHm
        | Protocol::NeoPk
        | Protocol::NeoBn
        | Protocol::NeoHmSoftware
        | Protocol::NeoPkSoftware => sim
            .node_ref::<Replica>(addr)
            .map(|n| n.stats.messages_in)
            .unwrap_or(0),
        Protocol::Pbft => sim
            .node_ref::<PbftReplica>(addr)
            .map(|n| n.messages_in)
            .unwrap_or(0),
        Protocol::Zyzzyva | Protocol::ZyzzyvaF => sim
            .node_ref::<ZyzzyvaReplica>(addr)
            .map(|n| n.messages_in)
            .unwrap_or(0),
        Protocol::HotStuff => sim
            .node_ref::<HotStuffReplica>(addr)
            .map(|n| n.messages_in)
            .unwrap_or(0),
        Protocol::MinBft => sim
            .node_ref::<MinBftReplica>(addr)
            .map(|n| n.messages_in)
            .unwrap_or(0),
        Protocol::Unreplicated => sim
            .node_ref::<UnreplicatedServer>(addr)
            .map(|n| n.executed)
            .unwrap_or(0),
    }
}

/// Short smoke parameters used by tests (tiny windows).
pub fn smoke(protocol: Protocol) -> RunParams {
    let mut p = RunParams::new(protocol, 4);
    p.warmup = 20 * MILLIS;
    p.measure = 80 * MILLIS;
    p
}

/// Typed builder collapsing one run's knobs — load, batch policy, fault
/// plan, observability — into a single chain. [`RunParams`]'s fields
/// stay public for direct poking, but this is the front door used by
/// the bins (`probe`, `batch_sweep`), the chaos control, and the tests:
///
/// ```
/// use neo_bench::harness::{Protocol, RunConfig};
/// use neo_core::BatchPolicy;
/// let r = RunConfig::new(Protocol::NeoHm)
///     .clients(8)
///     .batch(BatchPolicy::fixed(16))
///     .smoke()
///     .run();
/// assert!(r.committed > 0);
/// ```
#[derive(Clone, Debug)]
pub struct RunConfig {
    params: RunParams,
}

impl RunConfig {
    /// Start from the paper-testbed defaults ([`RunParams::new`], 4
    /// closed-loop clients).
    pub fn new(protocol: Protocol) -> Self {
        RunConfig {
            params: RunParams::new(protocol, 4),
        }
    }

    /// Closed-loop client count (the load axis).
    pub fn clients(mut self, n: usize) -> Self {
        self.params.n_clients = n;
        self
    }

    /// Fault bound (replica count follows the protocol's rule).
    pub fn f(mut self, f: usize) -> Self {
        self.params.f = f;
        self
    }

    /// Application and workload.
    pub fn app(mut self, app: AppKind) -> Self {
        self.params.app = app;
        self
    }

    /// Warm-up and measurement windows (virtual nanoseconds).
    pub fn window(mut self, warmup: u64, measure: u64) -> Self {
        self.params.warmup = warmup;
        self.params.measure = measure;
        self
    }

    /// RNG seed (network jitter, workload salts follow the client id).
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Crypto cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.params.costs = costs;
        self
    }

    /// Replica and client CPU models.
    pub fn cpus(mut self, server: CpuConfig, client: CpuConfig) -> Self {
        self.params.server_cpu = server;
        self.params.client_cpu = client;
        self
    }

    /// Network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.params.net = net;
        self
    }

    /// Targeted fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.params.faults = faults;
        self
    }

    /// Request batching policy (NeoBFT client driver + pipelined
    /// verification; baseline `batch_max` override).
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.params.batch = batch;
        self
    }

    /// Verify-stage lane: `serial` forces inline serial verification;
    /// `verify_workers(w)` forces the pipelined lane with `w` modeled
    /// workers (the `verify_sweep` axis).
    pub fn verify_workers(mut self, workers: usize) -> Self {
        self.params.verify_lane = Some(workers);
        self
    }

    /// Force the serial verify lane (the `verify_sweep` baseline).
    pub fn serial_verify(mut self) -> Self {
        self.params.verify_lane = Some(0);
        self
    }

    /// Observability configuration.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.params.obs = obs;
        self
    }

    /// The flight-recorder preset: metrics plus bounded event and
    /// packet rings on every node.
    pub fn flight_recorder(mut self) -> Self {
        self.params.obs = ObsConfig::flight_recorder();
        self
    }

    /// Shrink the windows to the tests' smoke size.
    pub fn smoke(mut self) -> Self {
        self.params.warmup = 20 * MILLIS;
        self.params.measure = 80 * MILLIS;
        self
    }

    /// The assembled parameters.
    pub fn params(self) -> RunParams {
        self.params
    }

    /// Build the simulator without running (phase-driven experiments).
    pub fn build(&self) -> Simulator {
        build(&self.params)
    }

    /// Run the experiment.
    pub fn run(&self) -> RunResult {
        run_experiment(&self.params)
    }
}

/// One virtual second, re-exported for bench targets.
pub const SECOND: u64 = SECS;
