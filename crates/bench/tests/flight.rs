//! End-to-end flight-recorder pipeline: an injected safety violation in
//! a chaos run must produce a self-contained flight dump whose events
//! assemble into request waterfalls — the acceptance path a human takes
//! from "CI says VIOLATION" to "here is where the request's time went".

use neo_bench::chaos::{generate_plan, run_neo_with, violation_report, RunHooks};
use neo_bench::trace::{assemble, render_waterfall, TraceReport};
use neo_core::Replica;
use neo_sim::FlightDump;
use neo_wire::{Addr, ReplicaId};

#[test]
fn injected_violation_produces_dump_and_waterfall() {
    // Seed 0 is a clean scenario (no Byzantine adapter); the injected
    // double-execution count is the only corruption.
    let plan = generate_plan(0);
    let mut inject = |sim: &mut neo_sim::Simulator, slice: u64| {
        if slice == 6 {
            sim.node_mut::<Replica>(Addr::Replica(ReplicaId(0)))
                .expect("replica 0 is not Byzantine-wrapped at seed 0")
                .stats
                .double_executions = 1;
        }
    };
    let mut hooks = RunHooks {
        inject: Some(&mut inject),
        ..RunHooks::default()
    };
    let outcome = run_neo_with(&plan, &mut hooks);

    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.contains("double execution")),
        "injected violation detected: {:?}",
        outcome.violations
    );
    let flight = outcome.flight.as_ref().expect("violation attaches a dump");
    assert_eq!(flight.reason, "invariant_violation");
    assert_eq!(flight.context["seed"], "0");
    assert!(flight.context["plan"].contains("\"seed\":0"));
    assert_eq!(flight.violations, outcome.violations);
    assert!(
        flight.nodes.iter().any(|n| !n.packets.is_empty()),
        "packet digests captured"
    );

    // The artifact round-trips the way `neo-trace` reads it: JSON on
    // disk, parsed back, events merged, spans assembled.
    let json = serde_json::to_string_pretty(flight).expect("dump serializes");
    let parsed: FlightDump = serde_json::from_str(&json).expect("dump parses");
    assert_eq!(&parsed, flight);
    let events = parsed.merged_events();
    let spans = assemble(&events);
    let full = spans
        .iter()
        .find(|s| {
            s.deliver.is_some() && s.exec.is_some() && s.reply.is_some() && s.commit.is_some()
        })
        .expect("at least one request shows deliver → exec → reply → commit");

    let waterfall = render_waterfall(full);
    for milestone in [
        "replica_deliver",
        "speculative_exec",
        "reply_sent",
        "client_commit",
    ] {
        assert!(waterfall.contains(milestone), "waterfall: {waterfall}");
    }
    assert!(waterfall.contains("total "), "per-phase durations rendered");

    // The rendered report embeds the event tail for triage without the
    // artifact in hand.
    let report = violation_report(&outcome);
    assert!(report.contains("SAFETY VIOLATION at seed 0"));
    assert!(report.contains("recorded events"));
    assert!(report.contains("Commit"));

    // And the same events feed the per-phase latency tables.
    let tr = TraceReport::from_events(&events);
    assert!(tr.requests > 0);
    assert!(tr.phases.contains_key("deliver_to_exec") || tr.phases.contains_key("total"));
}

#[test]
fn committed_fixture_matches_the_artifact_format() {
    // The fixture CI feeds to `neo-trace --check`; parsing and assembly
    // must keep working as the formats evolve.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/flight-fixture.json"
    );
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let dump: FlightDump = serde_json::from_str(&text).expect("fixture parses");
    assert_eq!(dump.reason, "invariant_violation");
    let spans = assemble(&dump.merged_events());
    assert_eq!(spans.len(), 1);
    let s = &spans[0];
    assert_eq!((s.client, s.request, s.slot), (3, 7, Some(4)));
    assert_eq!(s.stamp, Some(150_000), "seq 5 joins slot 4");
    assert!(s.committed());
    let w = render_waterfall(s);
    assert!(w.contains("request 3:7 (slot 4)"));
    assert!(w.contains("sequencer_stamp"));
}
