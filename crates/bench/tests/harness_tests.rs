//! Harness smoke tests: every protocol commits operations under the
//! calibrated cost model, and headline orderings from the paper hold.

use neo_bench::harness::{run_experiment, smoke, Protocol, RunConfig, RunParams};
use neo_core::BatchPolicy;

fn result(p: Protocol) -> neo_bench::RunResult {
    run_experiment(&smoke(p))
}

#[test]
fn every_protocol_commits_under_real_costs() {
    for p in Protocol::comparison_set() {
        let r = result(*p);
        assert!(
            r.committed > 50,
            "{} committed only {} ops",
            p.label(),
            r.committed
        );
    }
}

#[test]
fn neo_beats_baselines_on_latency() {
    let neo = result(Protocol::NeoHm);
    for p in [
        Protocol::Pbft,
        Protocol::Zyzzyva,
        Protocol::HotStuff,
        Protocol::MinBft,
    ] {
        let other = result(p);
        assert!(
            neo.p50_latency_ns < other.p50_latency_ns,
            "Neo-HM p50 {} must beat {} p50 {}",
            neo.p50_latency_ns,
            p.label(),
            other.p50_latency_ns
        );
    }
}

#[test]
fn software_sequencer_variants_commit() {
    for p in [Protocol::NeoHmSoftware, Protocol::NeoPkSoftware] {
        let r = result(p);
        assert!(r.committed > 50, "{}: {}", p.label(), r.committed);
    }
}

#[test]
fn scaling_clients_scales_throughput_until_saturation() {
    let low = run_experiment(&{
        let mut p = smoke(Protocol::NeoHm);
        p.n_clients = 1;
        p
    });
    let high = run_experiment(&{
        let mut p = smoke(Protocol::NeoHm);
        p.n_clients = 16;
        p
    });
    assert!(
        high.throughput > 4.0 * low.throughput,
        "closed-loop scaling: {} vs {}",
        high.throughput,
        low.throughput
    );
}

#[test]
fn results_are_deterministic() {
    let p = smoke(Protocol::Pbft);
    let a = run_experiment(&p);
    let b = run_experiment(&p);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.latencies_ns, b.latencies_ns);
}

#[test]
fn clean_run_reports_per_phase_latency_tables() {
    let r = result(Protocol::NeoHm);
    let trace = r.trace.as_ref().expect("tracing is on by default");
    assert!(trace.committed > 50, "spans assembled: {}", trace.committed);
    assert_eq!(trace.gap_detours, 0, "clean run takes the fast path");
    for phase in ["send_to_stamp", "reply_to_commit", "total"] {
        let h = trace
            .phases
            .get(phase)
            .unwrap_or_else(|| panic!("phase {phase} observed"));
        assert_eq!(h.count, trace.requests, "{phase} covers every span");
        assert!(h.p50 <= h.p99, "{phase} quantiles ordered");
    }
    assert!(
        trace.phases["total"].p50 >= trace.phases["reply_to_commit"].p50,
        "total dominates any single phase"
    );
    // The BENCH JSON view carries the tables.
    let json = serde_json::to_value(&r).expect("serialize");
    assert!(json["trace"]["phases"]["total"]["p99"].is_u64());

    // Tracing off → no trace report, numbers unchanged.
    let mut p = smoke(Protocol::NeoHm);
    p.obs = p.obs.with_trace(0);
    let untraced = run_experiment(&p);
    assert!(untraced.trace.is_none());
    assert_eq!(untraced.committed, r.committed, "tracing never perturbs");
}

#[test]
fn run_config_builder_matches_field_poking() {
    let built = RunConfig::new(Protocol::Pbft).clients(4).smoke().run();
    let poked = run_experiment(&smoke(Protocol::Pbft));
    assert_eq!(built.committed, poked.committed, "builder is sugar only");
}

#[test]
fn batching_multiplies_neo_throughput_under_load() {
    let single = RunConfig::new(Protocol::NeoHm).clients(16).smoke().run();
    let batched = RunConfig::new(Protocol::NeoHm)
        .clients(16)
        .batch(BatchPolicy::fixed(16))
        .smoke()
        .run();
    assert!(batched.committed > 100, "batched run commits");
    assert!(
        batched.throughput > 2.0 * single.throughput,
        "batch=16 must clearly beat batch=1 at saturation: {} vs {}",
        batched.throughput,
        single.throughput
    );
}

#[test]
fn batched_runs_keep_per_op_accounting_and_spans() {
    // Per-(client, request) accounting survives batching: completed ids
    // stay unique and strictly increasing per client, so neo-trace's
    // span joins keep working.
    let r = RunConfig::new(Protocol::NeoHm)
        .clients(2)
        .batch(BatchPolicy::fixed(8))
        .smoke()
        .run();
    assert!(r.committed > 100, "batched run commits: {}", r.committed);
    let trace = r.trace.as_ref().expect("tracing on by default");
    assert!(trace.committed > 0, "spans assembled under batching");
    assert!(r.p50_latency_ns > 0 && r.p50_latency_ns <= r.p99_latency_ns);
}

#[test]
fn batched_pbft_control_uses_the_policy_batch() {
    // The baseline control adopts the sweep's batch size so comparisons
    // stay like-for-like; it must still commit.
    let r = RunConfig::new(Protocol::Pbft)
        .clients(8)
        .batch(BatchPolicy::fixed(32))
        .smoke()
        .run();
    assert!(r.committed > 50, "batched PBFT commits: {}", r.committed);
}

#[test]
fn ycsb_workload_runs_on_kv_store() {
    use neo_app::YcsbConfig;
    use neo_bench::harness::AppKind;
    let mut p = smoke(Protocol::NeoHm);
    p.app = AppKind::Ycsb(YcsbConfig {
        record_count: 1_000, // small table keeps the smoke test fast
        ..YcsbConfig::WORKLOAD_A
    });
    let r = run_experiment(&p);
    assert!(r.committed > 50, "YCSB commits: {}", r.committed);
    let _ = RunParams::new(Protocol::NeoHm, 1);
}
