//! Extension experiment (§2.3: "Our solution can be easily extended to
//! geo-distributed settings"): how NeoBFT's single-round-trip commit
//! compares to the leader-based baselines as one-way latency grows from
//! data-center (5 µs) to metro (250 µs) to regional (2 ms) scale.
//!
//! NeoBFT's advantage *widens* with distance: its commit needs 2 message
//! delays end-to-end, while PBFT pays 5 and HotStuff pays a chained
//! pipeline — message delays dominate once propagation ≫ processing.

use neo_bench::harness::{run_experiment, Protocol, RunParams};
use neo_bench::{fmt_us, Table};
use neo_sim::{NetConfig, MILLIS};

fn main() {
    let latencies = [
        ("datacenter (5µs)", 5_000u64, 150 * MILLIS),
        ("metro (250µs)", 250_000, 400 * MILLIS),
        ("regional (2ms)", 2_000_000, 800 * MILLIS),
    ];
    let mut t = Table::new(
        "Geo extension — commit latency (1 client) vs one-way delay",
        &["Fabric", "Neo-HM", "PBFT", "Zyzzyva", "MinBFT", "PBFT/Neo"],
    );
    for (label, one_way, measure) in latencies {
        let run = |proto: Protocol| {
            let mut p = RunParams::new(proto, 1);
            p.net = NetConfig {
                one_way_latency_ns: one_way,
                jitter_ns: one_way / 10,
                ns_per_128_bytes: 10,
                drop_rate: 0.0,
            };
            p.warmup = measure / 4;
            p.measure = measure;
            run_experiment(&p).mean_latency_ns
        };
        let neo = run(Protocol::NeoHm);
        let pbft = run(Protocol::Pbft);
        let zyz = run(Protocol::Zyzzyva);
        let minbft = run(Protocol::MinBft);
        t.row(vec![
            label.to_string(),
            fmt_us(neo),
            fmt_us(pbft),
            fmt_us(zyz),
            fmt_us(minbft),
            format!("{:.2}×", pbft as f64 / neo as f64),
        ]);
    }
    t.print();
    println!("  message-delay counts dominate as propagation grows: NeoBFT's 2-delay");
    println!("  commit converges to ~3 hops of wire time while PBFT converges to ~5.");
}
