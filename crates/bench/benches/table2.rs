//! Table 2: switch resource usage of the aom-hm HMAC-vector prototype.

use neo_bench::Table;
use neo_switch::switch_resource_table;

fn main() {
    let mut t = Table::new(
        "Table 2 — Switch resource usage of the aom HMAC vector prototype",
        &[
            "Module",
            "Stages",
            "Action Data",
            "Hash Bit",
            "Hash Unit",
            "VLIW",
        ],
    );
    for row in switch_resource_table() {
        t.row(vec![
            row.module,
            row.stages.to_string(),
            format!("{:.1}%", row.action_data_pct),
            format!("{:.1}%", row.hash_bit_pct),
            format!("{:.1}%", row.hash_unit_pct),
            format!("{:.1}%", row.vliw_pct),
        ]);
    }
    t.print();
    println!("  (paper: Pipe0 = 7, 0.8%, 2.0%, 0%, 3.4%; Pipe1 = 12, 12.8%, 21.2%, 77.8%, 12.0%)");
}
