//! Criterion micro-benchmarks of the real cryptographic primitives —
//! the measurements behind `CostModel::CALIBRATED` (see
//! `neo_crypto::meter`).

use criterion::{criterion_group, criterion_main, Criterion};
use neo_crypto::{sha256, HmacKey, SequencerKeyPair, SignKeyPair};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let msg = vec![0xA5u8; 112]; // digest ‖ seq ‖ epoch sized input
    let payload = vec![0x5Au8; 1024];

    c.bench_function("sha256_112B", |b| {
        b.iter(|| sha256(black_box(&msg)));
    });
    c.bench_function("sha256_1KiB", |b| {
        b.iter(|| sha256(black_box(&payload)));
    });

    let key = HmacKey([7u8; 16]);
    c.bench_function("siphash_mac_112B", |b| {
        b.iter(|| key.tag(black_box(&msg)));
    });

    let ed = SignKeyPair::from_seed([1u8; 32]);
    let ed_sig = ed.sign(&msg);
    let ed_vk = ed.verify_key();
    c.bench_function("ed25519_sign", |b| {
        b.iter(|| ed.sign(black_box(&msg)));
    });
    c.bench_function("ed25519_verify", |b| {
        b.iter(|| ed_vk.verify(black_box(&msg), black_box(&ed_sig)).unwrap());
    });

    let seq = SequencerKeyPair::from_seed([2u8; 32]);
    let ec_sig = seq.sign(&msg);
    let ec_vk = seq.verify_key();
    c.bench_function("secp256k1_sign", |b| {
        b.iter(|| seq.sign(black_box(&msg)));
    });
    c.bench_function("secp256k1_verify", |b| {
        b.iter(|| ec_vk.verify(black_box(&msg), black_box(&ec_sig)).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crypto
}
criterion_main!(benches);
