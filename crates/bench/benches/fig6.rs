//! Figure 6: maximum throughput of aom-hm vs aom-pk with increasing
//! group size (4 → 64 receivers).

use neo_bench::Table;
use neo_switch::{FpgaModel, SequencerTiming, TofinoModel};

fn main() {
    let hm = TofinoModel::PAPER;
    let pk = FpgaModel::PAPER;
    let mut t = Table::new(
        "Figure 6 — maximum aom throughput vs receiver-group size",
        &["Receivers", "aom-hm (Mpps)", "aom-pk (Mpps)"],
    );
    for g in [4usize, 8, 12, 16, 24, 32, 40, 48, 56, 64] {
        t.row(vec![
            g.to_string(),
            format!("{:.2}", hm.max_throughput_pps(g) / 1e6),
            format!("{:.2}", pk.max_throughput_pps(g) / 1e6),
        ]);
    }
    t.print();
    println!(
        "  endpoints: aom-hm {:.1} Mpps @4 → {:.1} Mpps @64 (paper 76.24 → 5.7); aom-pk constant {:.2} Mpps (paper 1.11)",
        hm.max_throughput_pps(4) / 1e6,
        hm.max_throughput_pps(64) / 1e6,
        pk.max_throughput_pps(4) / 1e6
    );
}
