//! Figure 5: latency distribution of the public-key variant of aom
//! (aom-pk) at 25%, 50%, and 99% of saturation load, group size 4.

use neo_bench::Table;
use neo_switch::{percentile, FpgaModel, LatencySampler};

fn main() {
    let model = FpgaModel::PAPER;
    let sampler = LatencySampler::new(&model, 4);
    let mut t = Table::new(
        "Figure 5 — aom-pk per-packet latency CDF (group size 4)",
        &["Load", "p10", "p50", "p90", "p99", "p99.9"],
    );
    for load in [0.25, 0.50, 0.99] {
        let s = sampler.sample(load, 200_000, 5);
        t.row(vec![
            format!("{:.0}%", load * 100.0),
            format!("{:.2}µs", percentile(&s, 10.0) as f64 / 1e3),
            format!("{:.2}µs", percentile(&s, 50.0) as f64 / 1e3),
            format!("{:.2}µs", percentile(&s, 90.0) as f64 / 1e3),
            format!("{:.2}µs", percentile(&s, 99.0) as f64 / 1e3),
            format!("{:.2}µs", percentile(&s, 99.9) as f64 / 1e3),
        ]);
    }
    t.print();
    let s = sampler.sample(0.5, 200_000, 5);
    let p50 = percentile(&s, 50.0) as f64;
    let p999 = percentile(&s, 99.9) as f64;
    println!(
        "  median at 50% load = {:.1}µs (paper ~3µs); p99.9/p50 = +{:.1}% (paper +0.6%)",
        p50 / 1e3,
        (p999 / p50 - 1.0) * 100.0
    );
}
