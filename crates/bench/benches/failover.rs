//! §6.4 sequencer-switch failover: throughput timeline around a
//! sequencer failure — drop to zero, view change, reconfiguration,
//! recovery to peak in under ~100 ms of virtual time.

use neo_bench::harness::{build, Protocol, RunParams, GROUP};
use neo_bench::Table;
use neo_core::Client;
use neo_sim::MILLIS;
use neo_wire::{Addr, ClientId};

fn main() {
    let mut p = RunParams::new(Protocol::NeoHm, 24);
    p.warmup = 0;
    p.measure = 400 * MILLIS;
    let mut sim = build(&p);

    // Run at full speed for 50 ms, then the sequencer dies.
    let fail_at = 50 * MILLIS;
    sim.run_until(fail_at);
    sim.node_mut::<neo_aom::SequencerNode>(Addr::Sequencer(GROUP))
        .expect("sequencer")
        .set_behavior(neo_aom::Behavior::Mute);
    sim.run_until(400 * MILLIS);

    // Throughput timeline in 10 ms buckets.
    let bucket = 10 * MILLIS;
    let mut counts = vec![0u64; (400 * MILLIS / bucket) as usize];
    for c in 0..p.n_clients as u64 {
        let client = sim
            .node_ref::<Client>(Addr::Client(ClientId(c)))
            .expect("client");
        for op in &client.completed {
            let b = (op.completed_at / bucket) as usize;
            if b < counts.len() {
                counts[b] += 1;
            }
        }
    }
    let mut t = Table::new(
        "§6.4 — throughput timeline across a sequencer failover (fail at 50ms)",
        &["Window", "Throughput"],
    );
    for (i, c) in counts.iter().enumerate() {
        t.row(vec![
            format!("{}–{}ms", i * 10, (i + 1) * 10),
            format!("{:.1}K ops/s", *c as f64 / (bucket as f64 / 1e9) / 1e3),
        ]);
    }
    t.print();

    // Recovery: first bucket after the failure that reaches 80% of the
    // pre-failure rate.
    let peak = counts[..(fail_at / bucket) as usize]
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    let fail_bucket = (fail_at / bucket) as usize;
    let recovered = counts[fail_bucket..]
        .iter()
        .position(|c| *c * 10 >= peak * 8)
        .map(|i| (i + fail_bucket) * 10);
    match recovered {
        Some(ms) => println!(
            "  throughput recovered to ≥80% of peak by t = {ms} ms — {} ms after the failure\n  (paper: overall failover took < 100 ms, dominated by network reconfiguration).",
            ms as u64 - fail_at / MILLIS
        ),
        None => println!("  WARNING: no recovery observed within the run"),
    }
}
