//! Table 3: FPGA resource usage of the aom-pk cryptographic coprocessor.

use neo_bench::Table;
use neo_switch::fpga_resource_table;
use neo_switch::resources::ALVEO_U50;

fn main() {
    let mut t = Table::new(
        "Table 3 — FPGA resource usage of the aom public-key coprocessor",
        &["Module", "LUT", "Register", "BRAM", "DSP"],
    );
    for row in fpga_resource_table() {
        t.row(vec![
            row.module,
            format!("{:.2}%", row.lut_pct),
            format!("{:.2}%", row.register_pct),
            format!("{:.2}%", row.bram_pct),
            format!("{:.2}%", row.dsp_pct),
        ]);
    }
    t.row(vec![
        "Available".to_string(),
        format!("{}K", ALVEO_U50.lut / 1000),
        format!("{}K", ALVEO_U50.register / 1000),
        format!("{:.2}K", ALVEO_U50.bram as f64 / 1000.0),
        format!("{:.2}K", ALVEO_U50.dsp as f64 / 1000.0),
    ]);
    t.print();
    println!("  (paper: Pipeline = 0.91/0.70/2.12/0.57; Signer = 21.0/19.4/10.71/28.52; Total = 34.69/29.22/28.76/29.16)");
}
