//! Figure 9: NeoBFT throughput with simulated network packet drops
//! (0.001% – 1%).

use neo_bench::harness::{run_experiment, AppKind, Protocol, RunParams};
use neo_bench::{fmt_ops, Table};
use neo_sim::MILLIS;

fn main() {
    let mut t = Table::new(
        "Figure 9 — NeoBFT throughput vs simulated drop rate",
        &["Drop rate", "Neo-HM", "Neo-PK"],
    );
    let mut base = [0.0f64; 2];
    let mut at_1pct = [0.0f64; 2];
    for &rate in &[0.0, 0.00001, 0.0001, 0.001, 0.01] {
        let mut row = vec![if rate == 0.0 {
            "0%".to_string()
        } else {
            format!("{}%", rate * 100.0)
        }];
        for (i, proto) in [Protocol::NeoHm, Protocol::NeoPk].iter().enumerate() {
            let mut p = RunParams::new(*proto, 64);
            p.app = AppKind::Echo { size: 64 };
            p.net.drop_rate = rate;
            p.warmup = 20 * MILLIS;
            p.measure = 60 * MILLIS;
            let r = run_experiment(&p);
            if rate == 0.0 {
                base[i] = r.throughput;
            }
            if rate == 0.01 {
                at_1pct[i] = r.throughput;
            }
            row.push(fmt_ops(r.throughput));
        }
        t.row(row);
    }
    t.print();
    println!(
        "  throughput at 1% drops: Neo-HM {:.0}% of lossless, Neo-PK {:.0}% (paper: \"largely\n  unaffected\" at moderate drop rates, observable drop at 1%).",
        at_1pct[0] / base[0] * 100.0,
        at_1pct[1] / base[1] * 100.0
    );
}
