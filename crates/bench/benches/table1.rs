//! Table 1: protocol comparison — replication factor, bottleneck
//! complexity, authenticator complexity, message delay.
//!
//! The analytic columns restate the table; the measured columns verify
//! them empirically: message delays are measured as end-to-end latency
//! divided by the one-way network delay in a simulation with free CPUs
//! and zero jitter, and bottleneck complexity as messages processed per
//! request at the busiest replica.
//!
//! Note on NeoBFT's delay count: the paper counts 2 message delays
//! because the sequencer is a switch already on the client → replica
//! path; the simulator models the sequencer as an explicit hop, so
//! NeoBFT measures 3 hops here (client → sequencer → replica → client).

use neo_bench::harness::{build, collect, replica_messages, Protocol, RunParams};
use neo_bench::Table;
use neo_crypto::CostModel;
use neo_sim::{CpuConfig, NetConfig, MILLIS};

struct AnalyticRow {
    proto: Protocol,
    replication: &'static str,
    bottleneck: &'static str,
    authenticators: &'static str,
    delays: &'static str,
}

fn main() {
    let rows = [
        AnalyticRow {
            proto: Protocol::Pbft,
            replication: "3f+1",
            bottleneck: "O(N)",
            authenticators: "O(N^2)",
            delays: "5",
        },
        AnalyticRow {
            proto: Protocol::Zyzzyva,
            replication: "3f+1",
            bottleneck: "O(N)",
            authenticators: "O(N)",
            delays: "3",
        },
        AnalyticRow {
            proto: Protocol::HotStuff,
            replication: "3f+1",
            bottleneck: "O(N)",
            authenticators: "O(N)",
            delays: "4 (chained impl: ~9 hops)",
        },
        AnalyticRow {
            proto: Protocol::MinBft,
            replication: "2f+1",
            bottleneck: "O(N)",
            authenticators: "O(N^2)",
            delays: "4",
        },
        AnalyticRow {
            proto: Protocol::NeoHmSoftware,
            replication: "3f+1",
            bottleneck: "O(1)",
            authenticators: "O(N)",
            delays: "2 (+switch hop in sim)",
        },
    ];

    let mut t = Table::new(
        "Table 1 — protocol comparison (analytic vs measured)",
        &[
            "Protocol",
            "Replication",
            "Bottleneck",
            "Authenticators",
            "Delays (paper)",
            "Hops (measured)",
            "Bottleneck msgs/op (measured)",
        ],
    );

    let one_way = 5_000u64;
    for row in &rows {
        // Idealized network: fixed one-way latency, no jitter, free CPUs,
        // free crypto — latency is purely message delays.
        let mut p = RunParams::new(row.proto, 1);
        p.hotstuff_interval_ns = Some(1_000);
        p.net = NetConfig {
            one_way_latency_ns: one_way,
            jitter_ns: 0,
            ns_per_128_bytes: 0,
            drop_rate: 0.0,
        };
        p.costs = CostModel::FREE;
        p.server_cpu = CpuConfig::IDEAL;
        p.client_cpu = CpuConfig::IDEAL;
        p.warmup = 10 * MILLIS;
        p.measure = 50 * MILLIS;
        let mut sim = build(&p);
        sim.run_until(p.warmup + p.measure);
        let r = collect(&sim, &p);
        let hops = r.mean_latency_ns as f64 / one_way as f64;
        let ops = r.committed.max(1);
        let bottleneck = (0..p.n_replicas() as u32)
            .map(|i| replica_messages(&sim, &p, i))
            .max()
            .unwrap_or(0) as f64
            / ops as f64;
        t.row(vec![
            row.proto.label().to_string(),
            row.replication.to_string(),
            row.bottleneck.to_string(),
            row.authenticators.to_string(),
            row.delays.to_string(),
            format!("{hops:.1}"),
            format!("{bottleneck:.1}"),
        ]);
    }
    t.print();
    println!("  NeoBFT's bottleneck msgs/op ≈ 1 (the aom delivery) — O(1); leader-based");
    println!("  protocols grow with N (their leaders process O(N) messages per batch).");
    println!("  Measured column counts received messages; Zyzzyva's leader additionally");
    println!("  *sends* O(N) order-requests per batch. HotStuff hops reflect the chained");
    println!("  three-phase pipeline; the paper's '4' counts its event-driven basic form.");
}
