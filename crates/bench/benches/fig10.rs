//! Figure 10: maximum throughput of a replicated B-Tree key-value store
//! under YCSB workload A (100 K records, 128-byte fields).

use neo_app::YcsbConfig;
use neo_bench::harness::{run_experiment, AppKind, Protocol, RunParams};
use neo_bench::{fmt_ops, Table};
use neo_sim::MILLIS;

fn main() {
    let app = AppKind::Ycsb(YcsbConfig::WORKLOAD_A);
    let clients = [32usize, 96];
    let mut t = Table::new(
        "Figure 10 — replicated KV store, YCSB-A max throughput",
        &["Protocol", "Max throughput (txns/sec)"],
    );
    let mut results: Vec<(&'static str, f64)> = Vec::new();
    for proto in Protocol::comparison_set() {
        let r = clients
            .iter()
            .map(|&c| {
                let mut p = RunParams::new(*proto, c);
                p.app = app;
                p.warmup = 20 * MILLIS;
                p.measure = 60 * MILLIS;
                run_experiment(&p)
            })
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
            .expect("non-empty sweep");
        results.push((proto.label(), r.throughput));
        t.row(vec![proto.label().to_string(), fmt_ops(r.throughput)]);
    }
    t.print();
    let get = |l: &str| {
        results
            .iter()
            .find(|(x, _)| *x == l)
            .map(|(_, t)| *t)
            .unwrap_or(0.0)
    };
    println!(
        "  ordering check (paper: Neo > Zyzzyva > PBFT > HotStuff/MinBFT): Neo-HM {} vs Zyzzyva {} vs PBFT {} vs HotStuff {} vs MinBFT {}",
        fmt_ops(get("Neo-HM")),
        fmt_ops(get("Zyzzyva")),
        fmt_ops(get("PBFT")),
        fmt_ops(get("HotStuff")),
        fmt_ops(get("MinBFT")),
    );
}
