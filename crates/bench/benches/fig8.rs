//! Figure 8: NeoBFT throughput with an increasing number of replicas
//! (the §6.3 scalability study, software sequencer, up to 100 replicas).

use neo_bench::harness::{run_experiment, AppKind, Protocol, RunParams};
use neo_bench::{fmt_ops, Table};
use neo_sim::MILLIS;

fn main() {
    let mut t = Table::new(
        "Figure 8 — NeoBFT throughput vs replica count (software sequencer)",
        &["Replicas", "Neo-HM", "Neo-PK"],
    );
    let mut pk_first = 0.0f64;
    let mut pk_last = 0.0f64;
    for n in [4usize, 10, 19, 31, 52, 100] {
        // n = 3f+1 ⇒ f = (n-1)/3.
        let f = (n - 1) / 3;
        let mut row = vec![format!("{}", 3 * f + 1)];
        for proto in [Protocol::NeoHmSoftware, Protocol::NeoPkSoftware] {
            let mut p = RunParams::new(proto, 48);
            p.f = f;
            p.app = AppKind::Echo { size: 64 };
            p.warmup = 10 * MILLIS;
            p.measure = 40 * MILLIS;
            let r = run_experiment(&p);
            if proto == Protocol::NeoPkSoftware {
                if n == 4 {
                    pk_first = r.throughput;
                }
                if n == 100 {
                    pk_last = r.throughput;
                }
            }
            row.push(fmt_ops(r.throughput));
        }
        t.row(row);
    }
    t.print();
    println!(
        "  Neo-PK 4 → 100 replicas: {:.1}% throughput change (paper: −13%); Neo-HM declines with\n  group size as replicas process one packet per 4-receiver subgroup (paper §6.3).",
        (pk_last / pk_first - 1.0) * 100.0
    );
}
