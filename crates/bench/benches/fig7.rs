//! Figure 7: latency vs throughput of NeoBFT and the comparison
//! protocols under an increasing number of closed-loop clients
//! (echo-RPC, 64-byte requests, f = 1).

use neo_bench::harness::{run_experiment, AppKind, Protocol, RunParams};
use neo_bench::{fmt_ops, fmt_us, phase_breakdown, Table};
use neo_sim::MILLIS;

fn main() {
    let client_counts = [1usize, 8, 24, 64, 96];
    let mut t = Table::new(
        "Figure 7 — latency vs throughput (echo RPC, f = 1)",
        &["Protocol", "Clients", "Throughput", "Mean latency", "p99"],
    );
    let mut maxima: Vec<(&'static str, f64, u64)> = Vec::new();
    let mut series: Vec<(String, usize, neo_bench::RunResult)> = Vec::new();
    for proto in Protocol::comparison_set() {
        let mut best = (0.0f64, 0u64);
        let mut low_load_latency = 0u64;
        for &c in &client_counts {
            let mut p = RunParams::new(*proto, c);
            p.app = AppKind::Echo { size: 64 };
            p.warmup = 15 * MILLIS;
            p.measure = 50 * MILLIS;
            let r = run_experiment(&p);
            if c == 1 {
                low_load_latency = r.mean_latency_ns;
            }
            if r.throughput > best.0 {
                best = (r.throughput, r.mean_latency_ns);
            }
            t.row(vec![
                proto.label().to_string(),
                c.to_string(),
                fmt_ops(r.throughput),
                fmt_us(r.mean_latency_ns),
                fmt_us(r.p99_latency_ns),
            ]);
            series.push((proto.label().to_string(), c, r));
        }
        maxima.push((proto.label(), best.0, low_load_latency));
    }
    neo_bench::report::write_json("fig7", &series);
    t.print();

    // Per-phase breakdown for the highest-load NeoBFT and PBFT runs:
    // where did each operation spend its protocol life?
    for label in ["Neo-HM", "PBFT"] {
        if let Some((_, clients, r)) = series.iter().rev().find(|(l, _, _)| l == label) {
            phase_breakdown(
                &format!("{label} aggregate, {clients} clients"),
                &r.obs.aggregate,
            )
            .print();
        }
    }

    let mut s = Table::new(
        "Figure 7 summary — max throughput and low-load latency",
        &["Protocol", "Max throughput", "Latency (1 client)"],
    );
    let neo = maxima
        .iter()
        .find(|(l, _, _)| *l == "Neo-HM")
        .map(|(_, t, l)| (*t, *l))
        .expect("Neo-HM present");
    for (label, thr, lat) in &maxima {
        s.row(vec![
            label.to_string(),
            format!("{} ({:.2}× vs Neo-HM)", fmt_ops(*thr), neo.0 / thr),
            format!(
                "{} ({:.2}× vs Neo-HM)",
                fmt_us(*lat),
                *lat as f64 / neo.1 as f64
            ),
        ]);
    }
    s.print();
    println!(
        "  paper: Neo-HM beats PBFT 2.5×, HotStuff 3.4×, MinBFT 4.1×, Zyzzyva 1.8× on throughput;"
    );
    println!(
        "         latency advantages: PBFT 14.68×, HotStuff 42.28×, Zyzzyva 8.56×, MinBFT 6.08×;"
    );
    println!("         Zyzzyva-F drops >54% vs Zyzzyva; Neo-PK ≈ Neo-HM − 60K with +55µs latency.");
}
