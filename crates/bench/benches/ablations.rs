//! Ablation studies for the design choices the paper (and DESIGN.md)
//! call out:
//!
//! 1. **Confirm batching** (§6.2): Neo-BN with batched vs per-packet
//!    confirm broadcasts.
//! 2. **Hash-chain signature skipping** (§4.4): the software aom-pk
//!    sequencer with the signing-ratio controller vs signing every
//!    packet inline.
//! 3. **Subgroup fan-out** (§4.3/§6.3): Neo-HM receivers with and
//!    without the ⌈n/4⌉-packets-per-message cost at a mid-size group.

use neo_bench::harness::{build, collect, Protocol, RunParams};
use neo_bench::{fmt_ops, fmt_us, Table};
use neo_core::{NeoConfig, Replica};
use neo_sim::MILLIS;
use neo_wire::{Addr, ReplicaId};

fn run(params: &RunParams) -> neo_bench::RunResult {
    let mut sim = build(params);
    sim.run_until(params.warmup + params.measure);
    collect(&sim, params)
}

/// Like the harness runner, but with a caller-tweaked `NeoConfig`
/// (the knobs under ablation are per-replica configuration).
fn run_with_cfg(params: &RunParams, tweak: impl Fn(&mut NeoConfig)) -> neo_bench::RunResult {
    use neo_aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
    use neo_app::EchoWorkload;
    use neo_core::Client;
    use neo_crypto::SystemKeys;
    use neo_sim::{CpuConfig, SimConfig, Simulator};
    use neo_wire::{ClientId, GroupId};

    let group = GroupId(0);
    let n = params.n_replicas();
    let keys = SystemKeys::new(params.seed, n, params.n_clients);
    let mut cfg = NeoConfig::new(params.f);
    if matches!(params.protocol, Protocol::NeoBn) {
        cfg = cfg.with_byzantine_network();
    }
    tweak(&mut cfg);
    let mut sim = Simulator::new(SimConfig {
        net: params.net,
        default_cpu: params.server_cpu,
        seed: params.seed,
        faults: neo_sim::FaultPlan::none(),
    });
    let mut config = ConfigService::new();
    config.register_group(group, (0..n as u32).map(ReplicaId).collect(), params.f);
    sim.add_node_with_cpu(Addr::Config, Box::new(config), CpuConfig::IDEAL);
    let sequencer = SequencerNode::new(
        group,
        (0..n as u32).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Tofino(neo_switch::TofinoModel::PAPER),
        &keys,
    );
    sim.add_node_with_cpu(
        Addr::Sequencer(group),
        Box::new(sequencer),
        CpuConfig {
            dispatch_ns: 0,
            send_ns: 5,
            ns_per_kb: 0,
            cores: 1,
        },
    );
    for r in 0..n as u32 {
        let replica = Replica::new(
            ReplicaId(r),
            cfg.clone(),
            &keys,
            params.costs,
            Box::new(neo_app::EchoApp::new()),
        );
        sim.add_node_with_cpu(
            Addr::Replica(ReplicaId(r)),
            Box::new(replica),
            params.server_cpu,
        );
    }
    for c in 0..params.n_clients as u64 {
        let client = Client::new(
            ClientId(c),
            cfg.clone(),
            &keys,
            params.costs,
            Box::new(EchoWorkload::new(64, c + 1)),
        );
        sim.add_node_with_cpu(
            Addr::Client(ClientId(c)),
            Box::new(client),
            params.client_cpu,
        );
    }
    sim.run_until(params.warmup + params.measure);
    collect(&sim, params)
}

fn main() {
    let mut t = Table::new(
        "Ablations — what each design choice buys",
        &["Study", "Variant", "Throughput", "Mean latency"],
    );

    // 1. Confirm batching (Byzantine-network mode).
    for (label, batched) in [("batched (§6.2)", true), ("per-packet", false)] {
        let mut p = RunParams::new(Protocol::NeoBn, 64);
        p.warmup = 15 * MILLIS;
        p.measure = 50 * MILLIS;
        let r = run_with_cfg(&p, |c| c.batch_confirms = batched);
        t.row(vec![
            "confirm batching".into(),
            label.into(),
            fmt_ops(r.throughput),
            fmt_us(r.mean_latency_ns),
        ]);
    }

    // 2. Signature skipping in the software aom-pk sequencer: the
    // harness's NeoPkSoftware uses the controller; signing inline every
    // packet is what the Software hw-mode does.
    for (label, proto) in [
        ("ratio controller + chain", Protocol::NeoPkSoftware),
        ("sign every packet", Protocol::NeoPk), // FPGA signs all, but at
                                                // hardware rates: shown
                                                // for reference
    ] {
        let mut p = RunParams::new(proto, 64);
        p.warmup = 15 * MILLIS;
        p.measure = 50 * MILLIS;
        let r = run(&p);
        t.row(vec![
            "aom-pk signing".into(),
            label.into(),
            fmt_ops(r.throughput),
            fmt_us(r.mean_latency_ns),
        ]);
    }

    // 3. Subgroup fan-out cost at a 31-replica group.
    for (label, emulate) in [
        ("⌈n/4⌉ packets/msg (§4.3)", true),
        ("single packet (ideal)", false),
    ] {
        let mut p = RunParams::new(Protocol::NeoHmSoftware, 48);
        p.f = 10; // n = 31
        p.warmup = 15 * MILLIS;
        p.measure = 50 * MILLIS;
        let r = run_with_cfg(&p, |c| {
            *c = NeoConfig::new(10);
            c.emulate_hm_subgroups = emulate;
        });
        t.row(vec![
            "hm subgroups (n=31)".into(),
            label.into(),
            fmt_ops(r.throughput),
            fmt_us(r.mean_latency_ns),
        ]);
    }

    t.print();
    println!("  confirm batching recovers most of Neo-BN's throughput; the signing-ratio");
    println!("  controller keeps the software pk sequencer off the ECDSA critical path;");
    println!("  subgroup fan-out is what makes Neo-HM throughput fall with group size.");
}
