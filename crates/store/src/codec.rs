//! The on-disk record framing.
//!
//! Each record is `[len: u32 LE][check: u64 LE][payload]`, where `check`
//! is SipHash-2-4 (fixed key) over the length bytes followed by the
//! payload. The checksum is *integrity*, not authentication: a replica
//! trusts its own disk against torn writes and bit rot, while anything
//! from a peer is verified cryptographically at the protocol layer.
//!
//! Decoding is prefix-healing: it walks the buffer record by record and
//! stops at the first frame that is short (torn tail), oversized
//! (corrupt length), or checksum-mismatched (flipped byte) — returning
//! every record before the damage and the byte length of that valid
//! prefix, so recovery truncates instead of panicking.

use siphasher::sip::SipHasher24;
use std::hash::Hasher;

/// Bytes of framing per record (length + checksum).
pub const HEADER_LEN: usize = 4 + 8;

/// Largest payload a frame may claim. A corrupted length field must not
/// turn into a multi-gigabyte allocation.
pub const MAX_RECORD: usize = 16 << 20;

// Fixed SipHash key: the checksum guards against accidental corruption,
// so the key only needs to be stable across versions.
const K0: u64 = 0x6e65_6f5f_7374_6f72; // "neo_stor"
const K1: u64 = 0x655f_7761_6c5f_3031; // "e_wal_01"

fn checksum(len_bytes: &[u8; 4], payload: &[u8]) -> u64 {
    let mut h = SipHasher24::new_with_keys(K0, K1);
    h.write(len_bytes);
    h.write(payload);
    h.finish()
}

/// Append one framed record to `out`.
pub fn encode_record(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_RECORD, "record exceeds MAX_RECORD");
    let len_bytes = (payload.len() as u32).to_le_bytes();
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&checksum(&len_bytes, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode every intact record from the front of `buf`.
///
/// Returns the records and the length of the valid prefix in bytes.
/// `valid == buf.len()` means the buffer decoded cleanly; anything less
/// marks a torn or corrupted tail the caller should truncate away.
pub fn decode_all(buf: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while buf.len() - off >= HEADER_LEN {
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&buf[off..off + 4]);
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_RECORD {
            break; // corrupt length field
        }
        let mut check_bytes = [0u8; 8];
        check_bytes.copy_from_slice(&buf[off + 4..off + 12]);
        let check = u64::from_le_bytes(check_bytes);
        let body_start = off + HEADER_LEN;
        let Some(body_end) = body_start.checked_add(len) else {
            break;
        };
        if body_end > buf.len() {
            break; // torn tail: the record never finished writing
        }
        let payload = &buf[body_start..body_end];
        if checksum(&len_bytes, payload) != check {
            break; // flipped byte somewhere in the frame
        }
        records.push(payload.to_vec());
        off = body_end;
    }
    (records, off)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_many(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        for p in payloads {
            encode_record(p, &mut buf);
        }
        buf
    }

    #[test]
    fn round_trips_across_edge_sizes() {
        // Empty records, single bytes, sizes straddling the header width,
        // and a large frame all survive.
        let sizes = [0usize, 1, 2, 11, 12, 13, 255, 256, 4096, 70_000];
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .map(|&n| (0..n).map(|i| (i % 251) as u8).collect())
            .collect();
        let mut buf = Vec::new();
        for p in &payloads {
            encode_record(p, &mut buf);
        }
        let (records, valid) = decode_all(&buf);
        assert_eq!(valid, buf.len());
        assert_eq!(records, payloads);
    }

    #[test]
    fn empty_buffer_decodes_to_nothing() {
        assert_eq!(decode_all(&[]), (Vec::new(), 0));
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let buf = encode_many(&[b"alpha", b"beta", b"gamma"]);
        let first_two = encode_many(&[b"alpha", b"beta"]).len();
        // Tear the third record at every possible byte boundary: the
        // first two records always survive, the torn one never does.
        for cut in first_two..buf.len() {
            let (records, valid) = decode_all(&buf[..cut]);
            assert_eq!(records.len(), 2, "cut at {cut}");
            assert_eq!(valid, first_two, "cut at {cut}");
            assert_eq!(records[1], b"beta");
        }
    }

    #[test]
    fn flipped_byte_is_detected_everywhere_in_the_frame() {
        let buf = encode_many(&[b"first", b"second"]);
        let first_len = HEADER_LEN + 5;
        // Flip each byte of the *second* frame: header, checksum, or
        // payload — decoding always stops after the intact first record.
        for i in first_len..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let (records, valid) = decode_all(&bad);
            assert_eq!(records.len(), 1, "flip at {i}");
            assert_eq!(valid, first_len, "flip at {i}");
        }
        // A flip in the first frame loses everything — but still no panic.
        let mut bad = buf.clone();
        bad[HEADER_LEN] ^= 0x01;
        let (records, valid) = decode_all(&bad);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
    }

    #[test]
    fn oversized_length_field_stops_decoding() {
        let mut buf = encode_many(&[b"ok"]);
        let good = buf.len();
        // A frame claiming MAX_RECORD + 1 bytes: rejected before any
        // allocation, prefix preserved.
        let len_bytes = ((MAX_RECORD + 1) as u32).to_le_bytes();
        buf.extend_from_slice(&len_bytes);
        buf.extend_from_slice(&[0u8; 8]);
        buf.extend_from_slice(&[0u8; 64]);
        let (records, valid) = decode_all(&buf);
        assert_eq!(records.len(), 1);
        assert_eq!(valid, good);
    }

    #[test]
    fn checksum_covers_the_length_field() {
        // Shrinking the length field so the frame still "fits" must fail
        // the checksum (the hash covers the length bytes).
        let mut buf = encode_many(&[b"abcdef"]);
        buf[0] = 3; // claim 3 bytes instead of 6
        let (records, valid) = decode_all(&buf);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
    }
}
