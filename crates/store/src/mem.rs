//! The simulator's durability backend.
//!
//! A [`MemDisk`] is the "device": shared, it survives the node that
//! writes to it. A [`MemStore`] is one node's handle — buffered appends
//! live in the handle, durable state lives on the disk, so dropping the
//! handle (a simulated crash) loses exactly the writes that were never
//! flushed. The chaos runner keeps a registry of disks and hands the
//! same disk to a restarted replica.

use neo_sim::store::Store;
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Default)]
struct DiskInner {
    wal: Vec<Vec<u8>>,
    checkpoint: Option<Vec<u8>>,
}

/// The durable half: survives crashes (handle drops).
#[derive(Clone, Default)]
pub struct MemDisk {
    inner: Arc<Mutex<DiskInner>>,
}

impl MemDisk {
    /// A fresh, empty disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Durable WAL records currently on the disk (tests).
    pub fn wal_len(&self) -> usize {
        self.inner.lock().wal.len()
    }

    /// Whether a checkpoint blob is present (tests).
    pub fn has_checkpoint(&self) -> bool {
        self.inner.lock().checkpoint.is_some()
    }
}

/// One node's handle on a [`MemDisk`], with a volatile append buffer.
pub struct MemStore {
    disk: MemDisk,
    buffer: Vec<Vec<u8>>,
    fsync_model_ns: u64,
}

impl MemStore {
    /// Open `disk` with a modeled per-flush fsync cost for the simulator.
    pub fn open(disk: MemDisk, fsync_model_ns: u64) -> Self {
        MemStore {
            disk,
            buffer: Vec::new(),
            fsync_model_ns,
        }
    }
}

impl Store for MemStore {
    fn append(&mut self, record: &[u8]) {
        self.buffer.push(record.to_vec());
    }

    fn dirty(&self) -> bool {
        !self.buffer.is_empty()
    }

    fn flush(&mut self) -> u64 {
        let bytes = self.buffer.iter().map(|r| r.len() as u64).sum();
        if bytes > 0 {
            self.disk.inner.lock().wal.append(&mut self.buffer);
        }
        bytes
    }

    fn put_checkpoint(&mut self, blob: &[u8]) {
        self.disk.inner.lock().checkpoint = Some(blob.to_vec());
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        self.disk.inner.lock().checkpoint.clone()
    }

    fn log_records(&self) -> Vec<Vec<u8>> {
        self.disk.inner.lock().wal.clone()
    }

    fn reset_log(&mut self, records: &[Vec<u8>]) {
        self.disk.inner.lock().wal = records.to_vec();
    }

    fn fsync_model_ns(&self) -> u64 {
        self.fsync_model_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unflushed_appends_die_with_the_handle() {
        let disk = MemDisk::new();
        let mut store = MemStore::open(disk.clone(), 0);
        store.append(b"durable");
        assert!(store.dirty());
        assert_eq!(store.flush(), 7);
        assert!(!store.dirty());
        store.append(b"volatile");
        drop(store); // crash: the buffered record is gone
        let reopened = MemStore::open(disk, 0);
        assert_eq!(reopened.log_records(), vec![b"durable".to_vec()]);
    }

    #[test]
    fn checkpoint_and_compaction_survive_reopen() {
        let disk = MemDisk::new();
        let mut store = MemStore::open(disk.clone(), 0);
        for r in [&b"a"[..], b"b", b"c"] {
            store.append(r);
        }
        store.flush();
        store.put_checkpoint(b"snapshot@2");
        store.reset_log(&[b"c".to_vec()]);
        drop(store);
        let reopened = MemStore::open(disk, 0);
        assert_eq!(reopened.checkpoint(), Some(b"snapshot@2".to_vec()));
        assert_eq!(reopened.log_records(), vec![b"c".to_vec()]);
    }

    #[test]
    fn model_cost_is_reported_to_the_executor() {
        let store = MemStore::open(MemDisk::new(), 50_000);
        assert_eq!(store.fsync_model_ns(), 50_000);
        assert_eq!(MemStore::open(MemDisk::new(), 0).fsync_model_ns(), 0);
    }
}
