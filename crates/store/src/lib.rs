//! # neo-store
//!
//! Durable consensus storage behind the sans-IO [`neo_sim::Store`]
//! effect: a checksummed append-only write-ahead log plus an atomically
//! replaced checkpoint blob.
//!
//! * [`codec`] — the framed on-disk record format (length, SipHash-2-4
//!   checksum, payload) with prefix-healing decode.
//! * [`MemStore`]/[`MemDisk`] — the simulator backend: the disk outlives
//!   the node handle, so a simulated crash loses exactly the unflushed
//!   buffer.
//! * [`FileStore`] — the real backend: batched `fdatasync`, torn-tail
//!   truncation at open, temp-file-and-rename checkpoint replacement.
//!
//! What goes *into* the records (slot entries, checkpoint certificates)
//! is the protocol layer's business — see `neobft::replica` and
//! DESIGN.md §17.

pub mod codec;
pub mod file;
pub mod mem;

pub use file::FileStore;
pub use mem::{MemDisk, MemStore};
