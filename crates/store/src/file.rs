//! The real-disk backend used by the tokio runtime.
//!
//! Layout inside the data directory:
//!
//! * `wal.log` — framed records ([`crate::codec`]), append-only. A torn
//!   or corrupted tail found at open is truncated away, never panicked
//!   on.
//! * `checkpoint.bin` — one framed record holding the checkpoint blob,
//!   replaced atomically via write-temp-then-rename.
//!
//! Appends buffer in memory; [`Store::flush`] writes them and issues one
//! `fdatasync` — the batched-fsync half of write-ahead logging. The
//! executor calls `flush` before releasing buffered sends, so a reply
//! can never reach a client before the slot it acknowledges is durable.

use crate::codec::{decode_all, encode_record};
use neo_sim::store::Store;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// A file-backed [`Store`] rooted at one data directory.
pub struct FileStore {
    dir: PathBuf,
    wal: File,
    /// Durable records, mirrored in memory for cheap `log_records`.
    durable: Vec<Vec<u8>>,
    /// Appends awaiting the next flush.
    buffer: Vec<Vec<u8>>,
    checkpoint: Option<Vec<u8>>,
}

fn read_file(path: &Path) -> Vec<u8> {
    let mut bytes = Vec::new();
    if let Ok(mut f) = File::open(path) {
        f.read_to_end(&mut bytes)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    }
    bytes
}

impl FileStore {
    /// Open (or create) the store at `dir`, healing a damaged WAL tail.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));

        let wal_path = dir.join("wal.log");
        let bytes = read_file(&wal_path);
        let (durable, valid) = decode_all(&bytes);
        if valid < bytes.len() {
            // Torn/corrupt tail: truncate to the last intact record.
            let f = OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .expect("open wal for truncation");
            f.set_len(valid as u64).expect("truncate wal tail");
            f.sync_data().expect("sync truncated wal");
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .expect("open wal for append");

        let ckpt_bytes = read_file(&dir.join("checkpoint.bin"));
        let checkpoint = match decode_all(&ckpt_bytes) {
            // Only a cleanly framed, complete blob counts; a torn rename
            // residue or flipped byte degrades to "no checkpoint".
            (mut records, valid) if valid == ckpt_bytes.len() && records.len() == 1 => {
                records.pop()
            }
            _ => None,
        };

        FileStore {
            dir,
            wal,
            durable,
            buffer: Vec::new(),
            checkpoint,
        }
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let dst = self.dir.join(name);
        let mut f = File::create(&tmp).expect("create temp file");
        f.write_all(bytes).expect("write temp file");
        f.sync_all().expect("sync temp file");
        drop(f);
        std::fs::rename(&tmp, &dst).expect("rename into place");
    }
}

impl Store for FileStore {
    fn append(&mut self, record: &[u8]) {
        self.buffer.push(record.to_vec());
    }

    fn dirty(&self) -> bool {
        !self.buffer.is_empty()
    }

    fn flush(&mut self) -> u64 {
        if self.buffer.is_empty() {
            return 0;
        }
        let mut bytes = Vec::new();
        for r in &self.buffer {
            encode_record(r, &mut bytes);
        }
        self.wal.write_all(&bytes).expect("append to wal");
        // One fdatasync covers the whole batch.
        self.wal.sync_data().expect("fsync wal");
        self.durable.append(&mut self.buffer);
        bytes.len() as u64
    }

    fn put_checkpoint(&mut self, blob: &[u8]) {
        let mut framed = Vec::with_capacity(blob.len() + 16);
        encode_record(blob, &mut framed);
        self.write_atomic("checkpoint.bin", &framed);
        self.checkpoint = Some(blob.to_vec());
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        self.checkpoint.clone()
    }

    fn log_records(&self) -> Vec<Vec<u8>> {
        self.durable.clone()
    }

    fn reset_log(&mut self, records: &[Vec<u8>]) {
        let mut bytes = Vec::new();
        for r in records {
            encode_record(r, &mut bytes);
        }
        self.write_atomic("wal.log", &bytes);
        self.wal = OpenOptions::new()
            .append(true)
            .open(self.dir.join("wal.log"))
            .expect("reopen wal after compaction");
        self.durable = records.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neo-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut s = FileStore::open(&dir);
            s.append(b"one");
            s.append(b"two");
            assert!(s.dirty());
            assert!(s.flush() > 0);
            s.append(b"never-flushed");
        } // crash: the buffered third record is lost
        let s = FileStore::open(&dir);
        assert_eq!(s.log_records(), vec![b"one".to_vec(), b"two".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        {
            let mut s = FileStore::open(&dir);
            s.append(b"keep-me");
            s.append(b"tail");
            s.flush();
        }
        // Tear the last record mid-frame.
        let wal = dir.join("wal.log");
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 2]).unwrap();
        let s = FileStore::open(&dir);
        assert_eq!(s.log_records(), vec![b"keep-me".to_vec()]);
        // The file itself was healed: a second open agrees.
        assert_eq!(FileStore::open(&dir).log_records().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_in_wal_is_detected_not_panicked_on() {
        let dir = temp_dir("flip");
        {
            let mut s = FileStore::open(&dir);
            s.append(b"good");
            s.append(b"soon-bad");
            s.flush();
        }
        let wal = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x08;
        std::fs::write(&wal, &bytes).unwrap();
        let s = FileStore::open(&dir);
        assert_eq!(s.log_records(), vec![b"good".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_replaces_atomically_and_tolerates_corruption() {
        let dir = temp_dir("ckpt");
        {
            let mut s = FileStore::open(&dir);
            assert_eq!(s.checkpoint(), None);
            s.put_checkpoint(b"state@8");
            s.put_checkpoint(b"state@16");
        }
        let s = FileStore::open(&dir);
        assert_eq!(s.checkpoint(), Some(b"state@16".to_vec()));
        drop(s);
        // Corrupt the blob: open degrades to "no checkpoint".
        let ckpt = dir.join("checkpoint.bin");
        let mut bytes = std::fs::read(&ckpt).unwrap();
        bytes[14] ^= 0x80;
        std::fs::write(&ckpt, &bytes).unwrap();
        assert_eq!(FileStore::open(&dir).checkpoint(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_the_wal() {
        let dir = temp_dir("compact");
        {
            let mut s = FileStore::open(&dir);
            for r in [&b"0"[..], b"1", b"2", b"3"] {
                s.append(r);
            }
            s.flush();
            s.reset_log(&[b"2".to_vec(), b"3".to_vec()]);
            s.append(b"4");
            s.flush();
        }
        let s = FileStore::open(&dir);
        assert_eq!(
            s.log_records(),
            vec![b"2".to_vec(), b"3".to_vec(), b"4".to_vec()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
