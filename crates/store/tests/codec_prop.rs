//! Property tests for the on-disk record codec: arbitrary payload
//! batches round-trip, and arbitrary damage (truncation anywhere, a
//! byte flipped anywhere) degrades to a strict valid prefix — never a
//! panic, never a phantom record.

use neo_store::codec::{decode_all, encode_record, HEADER_LEN};
use proptest::prelude::*;

fn encode_many(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in payloads {
        encode_record(p, &mut buf);
    }
    buf
}

proptest! {
    #[test]
    fn round_trip_any_batch(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..300), 0..20)) {
        let buf = encode_many(&payloads);
        let (records, valid) = decode_all(&buf);
        prop_assert_eq!(valid, buf.len());
        prop_assert_eq!(records, payloads);
    }

    #[test]
    fn truncation_yields_a_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..100), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let buf = encode_many(&payloads);
        let cut = (buf.len() as f64 * cut_frac) as usize;
        let (records, valid) = decode_all(&buf[..cut]);
        prop_assert!(valid <= cut);
        prop_assert!(records.len() <= payloads.len());
        // Whatever survived is exactly a prefix of what was written.
        prop_assert_eq!(&records[..], &payloads[..records.len()]);
        // The valid prefix re-decodes to the same records.
        let (again, again_valid) = decode_all(&buf[..valid]);
        prop_assert_eq!(again_valid, valid);
        prop_assert_eq!(again, records);
    }

    #[test]
    fn single_byte_damage_never_panics_or_forges(
        payloads in proptest::collection::vec(
            proptest::collection::vec(1u8..=255, 1..80), 1..8),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let buf = encode_many(&payloads);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        let mut bad = buf.clone();
        bad[pos] ^= flip;
        let (records, valid) = decode_all(&bad);
        prop_assert!(valid <= bad.len());
        // Records before the damaged frame are untouched; nothing after
        // it is ever reported. Find which frame `pos` falls into.
        let mut boundary = 0usize;
        let mut damaged_frame = payloads.len();
        for (i, p) in payloads.iter().enumerate() {
            let end = boundary + HEADER_LEN + p.len();
            if pos < end {
                damaged_frame = i;
                break;
            }
            boundary = end;
        }
        prop_assert!(records.len() <= damaged_frame);
        prop_assert_eq!(&records[..], &payloads[..records.len()]);
    }
}
