//! Real-runtime crash/restart test: four loopback UDP replicas, each
//! running over a durable [`FileStore`] data directory. Mid-workload one
//! replica is killed (its process-local state and socket die; the WAL and
//! certified checkpoint survive on disk), then restarted against the
//! *same* directory. The restarted replica must rejoin from its certified
//! checkpoint — never a slot-0 replay once a checkpoint exists — catch up
//! via state transfer from its peers, and converge on the same execution
//! digests, while the client's replies stay byte-identical to the serial
//! echo baseline.

use neobft::aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{EchoApp, EchoWorkload, Workload};
use neobft::core::{Client, NeoConfig, RecoveryPhase, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::runtime::AddressBook;
use neobft::store::FileStore;
use neobft::wire::{ClientId, GroupId, ReplicaId};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const GROUP: GroupId = GroupId(0);
const N: usize = 4;
const VICTIM: usize = 3;
const OPS: usize = 60;
/// Short sync interval so the victim certifies checkpoints well inside
/// the first third of the op budget.
const SYNC_INTERVAL: u64 = 8;

fn data_dir(r: usize) -> PathBuf {
    std::env::temp_dir().join(format!("neo-runtime-restart-{}-r{r}", std::process::id()))
}

fn durable_replica(r: usize, cfg: &NeoConfig, keys: &SystemKeys) -> Replica {
    Replica::with_store(
        ReplicaId(r as u32),
        cfg.clone(),
        keys,
        CostModel::FREE,
        Box::new(EchoApp::new()),
        Box::new(FileStore::open(data_dir(r))),
    )
}

fn commits(h: &neobft::runtime::NodeHandle) -> u64 {
    h.metrics_snapshot()
        .event(neobft::sim::obs::EventKind::Commit)
}

/// Poll until `done` returns true or the deadline passes; panics with
/// `what` on timeout so failures name the phase that hung.
fn await_phase(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn killed_replica_rejoins_from_certified_checkpoint_over_loopback() {
    for r in 0..N {
        let _ = std::fs::remove_dir_all(data_dir(r));
    }
    let keys = SystemKeys::new(11, N, 1);
    let mut cfg = NeoConfig::new(1);
    cfg.sync_interval = SYNC_INTERVAL;
    let dep = AddressBook::builder()
        .replicas(N)
        .clients(1)
        .group(GROUP)
        .base_port(47320)
        .build()
        .expect("deployment fits the port space");

    let mut config = ConfigService::new();
    config.register_group(GROUP, dep.replica_ids(), 1);
    let config_h = dep
        .spawn(Box::new(config), dep.config_service())
        .expect("config service spawns");
    let seq = SequencerNode::new(
        GROUP,
        dep.replica_ids(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = dep
        .spawn(Box::new(seq), dep.sequencer())
        .expect("sequencer spawns");
    let mut replica_hs: Vec<Option<_>> = (0..N)
        .map(|r| {
            Some(
                dep.spawn(Box::new(durable_replica(r, &cfg, &keys)), dep.replica(r))
                    .expect("replica spawns"),
            )
        })
        .collect();
    let mut client = Client::new(
        ClientId(0),
        cfg.clone(),
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(32, 7)),
    );
    client.max_ops = Some(OPS as u64);
    let client_h = dep
        .spawn(Box::new(client), dep.client(0))
        .expect("client spawns");

    // Phase 1: run until the victim has certified at least one
    // checkpoint on disk and a third of the budget has committed.
    await_phase("a certified checkpoint on the victim", || {
        let committed = commits(replica_hs[0].as_ref().unwrap());
        let certified = replica_hs[VICTIM]
            .as_ref()
            .unwrap()
            .metrics()
            .counter("replica.checkpoints_certified");
        committed >= (OPS / 3) as u64 && certified >= 1
    });

    // Kill the victim. Dropping the node loop closes its socket; the
    // surviving trio is exactly the 2f + 1 quorum, so commits continue.
    let node = replica_hs[VICTIM]
        .take()
        .unwrap()
        .try_shutdown()
        .expect("victim joins");
    let victim = node.as_any().downcast_ref::<Replica>().unwrap();
    assert!(
        victim.stats.checkpoints_certified >= 1,
        "victim certified a checkpoint before the crash"
    );
    assert!(
        victim.stable_checkpoint_slot().is_some(),
        "victim holds a stable checkpoint at crash time"
    );
    let executed_at_crash = victim.stats.executed;
    drop(node);

    // Phase 2: the remaining three replicas make progress while the
    // victim is down, so its log is genuinely stale at restart.
    await_phase("progress during the outage", || {
        commits(replica_hs[0].as_ref().unwrap()) >= (2 * OPS / 3) as u64
    });

    // Phase 3: restart over the same data directory. `with_store`
    // replays the durable WAL suffix above the on-disk checkpoint, then
    // the recovery state machine fetches the rest from peers.
    let h = dep
        .spawn(
            Box::new(durable_replica(VICTIM, &cfg, &keys)),
            dep.replica(VICTIM),
        )
        .expect("victim restarts on the same port");
    replica_hs[VICTIM] = Some(h);

    // Recovery completion is observable: the replica times its state
    // transfer into the `replica.recovery_ns` histogram when it
    // re-enters `Active`.
    await_phase("the restarted victim to finish recovery", || {
        replica_hs[VICTIM]
            .as_ref()
            .unwrap()
            .metrics_snapshot()
            .histograms
            .get("replica.recovery_ns")
            .map(|h| h.count > 0)
            .unwrap_or(false)
    });

    // Phase 4: the client drains its full budget with the victim back.
    await_phase("the full op budget to commit", || {
        commits(replica_hs[0].as_ref().unwrap()) >= OPS as u64
    });
    std::thread::sleep(Duration::from_millis(200));

    // Replies are byte-identical to the serial baseline: the echo app
    // returns each request verbatim, and the workload stream is a pure
    // function of (size, salt), so replaying it serially regenerates the
    // expected reply for every request id in issue order.
    let node = client_h.try_shutdown().expect("client joins");
    let client = node.as_any().downcast_ref::<Client>().unwrap();
    assert_eq!(client.completed.len(), OPS, "all ops commit despite the crash");
    let mut completed = client.completed.clone();
    completed.sort_by_key(|op| op.request_id.0);
    let mut baseline = EchoWorkload::new(32, 7);
    for op in &completed {
        let expected = baseline.next_op();
        assert_eq!(
            op.result, expected,
            "request {} echoes the serial baseline",
            op.request_id.0
        );
    }

    // Inspect the restarted victim: it resumed from its certified
    // checkpoint (base > 0 — never a slot-0 replay once a checkpoint
    // exists), finished the state machine, and caught up past its
    // pre-crash execution point.
    let recovery_ns = replica_hs[VICTIM]
        .as_ref()
        .unwrap()
        .metrics_snapshot()
        .histograms
        .get("replica.recovery_ns")
        .map(|h| h.sum)
        .unwrap_or(0);
    let node = replica_hs[VICTIM]
        .take()
        .unwrap()
        .try_shutdown()
        .expect("restarted victim joins");
    let rejoined = node.as_any().downcast_ref::<Replica>().unwrap();
    assert_eq!(
        rejoined.recovery_phase(),
        Some(RecoveryPhase::Active),
        "victim completed the recovery state machine"
    );
    let base = rejoined
        .recovery_base()
        .expect("restarted-from-store replica records its recovery base");
    assert!(
        base.0 > 0,
        "victim resumed from its certified checkpoint, not slot 0"
    );
    assert!(
        rejoined.stable_checkpoint_slot().is_some(),
        "victim holds a stable checkpoint after rejoining"
    );
    assert!(
        rejoined.stats.executed >= executed_at_crash,
        "rejoined victim is at least as far as it was at crash time \
         ({} < {executed_at_crash})",
        rejoined.stats.executed
    );
    println!(
        "restart: base slot {}, executed {} -> {}, recovery {recovery_ns} ns",
        base.0, executed_at_crash, rejoined.stats.executed
    );

    // Safety: wherever the rejoined victim and replica 0 both executed a
    // slot, their digests agree — and they overlap on a non-trivial
    // suffix, proving the victim really caught up.
    let node = replica_hs[0].take().unwrap().try_shutdown().expect("r0 joins");
    let r0 = node.as_any().downcast_ref::<Replica>().unwrap();
    let mut overlap = 0usize;
    for (slot, (a, b)) in r0
        .exec_digests()
        .iter()
        .zip(rejoined.exec_digests().iter())
        .enumerate()
    {
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(a, b, "digest divergence at slot {slot}");
            overlap += 1;
        }
    }
    assert!(
        overlap > 0,
        "victim and replica 0 share at least one executed slot"
    );

    for h in replica_hs.into_iter().flatten() {
        h.try_shutdown().expect("replica joins");
    }
    seq_h.try_shutdown().expect("sequencer joins");
    config_h.try_shutdown().expect("config service joins");
    for r in 0..N {
        let _ = std::fs::remove_dir_all(data_dir(r));
    }
}
