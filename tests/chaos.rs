//! neo-chaos integration tests: the deterministic adversarial sweep and
//! targeted fault-kind scenarios, all checked against the global safety
//! invariants of `neobft::core::invariants`.

use neobft::aom::{Behavior, SequencerNode};
use neobft::bench::chaos::{
    build_cluster, generate_plan, run_neo, run_pbft_control, violation_report, ChaosPlan, HORIZON,
};
use neobft::core::invariants::{check_replicas, InvariantChecker};
use neobft::core::Replica;
use neobft::sim::{FaultPlan, FaultRule, Simulator, MICROS, MILLIS};
use neobft::wire::{Addr, ClientId, GroupId, ReplicaId};

const GROUP: GroupId = GroupId(0);
const N: u32 = 4;

/// Every replica of a byz-free cluster.
fn replicas(sim: &Simulator) -> Vec<&Replica> {
    (0..N)
        .filter_map(|r| sim.node_ref::<Replica>(Addr::Replica(ReplicaId(r))))
        .collect()
}

fn committed(sim: &Simulator, n_clients: u64) -> u64 {
    (0..n_clients)
        .filter_map(|c| sim.node_ref::<neobft::core::Client>(Addr::Client(ClientId(c))))
        .map(|cl| cl.completed.len() as u64)
        .sum()
}

/// A handcrafted plan for the targeted scenarios below.
fn plan_with(seed: u64, faults: FaultPlan) -> ChaosPlan {
    ChaosPlan {
        seed,
        horizon_ns: 30 * MILLIS,
        n_clients: 2,
        sync_interval: 8,
        faults,
        byz: None,
        batch: 1,
    }
}

/// Run a handcrafted cluster in slices with invariant checks, returning
/// the settled simulator and any violations.
fn run_checked(plan: &ChaosPlan, seq_behavior: Option<Behavior>) -> (Simulator, Vec<String>) {
    let mut sim = build_cluster(plan);
    if let Some(b) = seq_behavior {
        sim.node_mut::<SequencerNode>(Addr::Sequencer(GROUP))
            .expect("sequencer")
            .set_behavior(b);
    }
    let mut checker = InvariantChecker::new();
    let slice = plan.horizon_ns / 10;
    for i in 1..=10 {
        sim.run_until(i * slice);
        checker.check(&replicas(&sim));
    }
    sim.run_until(plan.horizon_ns + plan.horizon_ns / 2);
    checker.check(&replicas(&sim));
    let violations = checker.violations().iter().map(|v| v.to_string()).collect();
    (sim, violations)
}

#[test]
fn chaos_sweep_upholds_safety_invariants_across_50_seeds() {
    let mut kinds_seen = [false; 4];
    let mut byz_runs = 0u64;
    let mut total_committed = 0u64;
    let mut faults_fired = (0u64, 0u64, 0u64, 0u64); // dup, tamper, spike, dropped
    for seed in 0..50 {
        let plan = generate_plan(seed);
        for rule in plan.faults.rules() {
            match rule {
                FaultRule::Duplicate { .. } => kinds_seen[0] = true,
                FaultRule::DelaySpike { .. } => kinds_seen[1] = true,
                FaultRule::Tamper { .. } => kinds_seen[2] = true,
                FaultRule::Partition { .. } => kinds_seen[3] = true,
                _ => {}
            }
        }
        if plan.byz.is_some() {
            byz_runs += 1;
        }
        let outcome = run_neo(&plan);
        assert!(
            outcome.violations.is_empty(),
            "{}",
            violation_report(&outcome)
        );
        total_committed += outcome.committed;
        faults_fired.0 += outcome.net.duplicated;
        faults_fired.1 += outcome.net.tampered;
        faults_fired.2 += outcome.net.delay_spiked;
        faults_fired.3 += outcome.net.dropped_fault;
        // PBFT control on a subsample: same plan, classical protocol.
        if seed % 10 == 0 {
            let (_, anomalies) = run_pbft_control(&plan);
            assert!(anomalies.is_empty(), "seed {seed}: {anomalies:?}");
        }
    }
    assert!(
        kinds_seen.iter().all(|k| *k),
        "sweep must cover all four fault kinds, saw {kinds_seen:?}"
    );
    assert!(byz_runs >= 1, "sweep must include a Byzantine adapter");
    assert!(
        total_committed > 0,
        "clients must make progress across the sweep"
    );
    // The faults actually fired — a sweep that never injects anything
    // proves nothing.
    assert!(faults_fired.0 > 0, "no packets were ever duplicated");
    assert!(faults_fired.1 > 0, "no packets were ever tampered");
    assert!(faults_fired.2 > 0, "no packets were ever delay-spiked");
    assert!(faults_fired.3 > 0, "no packets were ever fault-dropped");
}

#[test]
fn chaos_runs_reproduce_byte_for_byte_from_the_seed() {
    // Seed 2 carries a tamper-first plan plus a crash-restart (every
    // third seed crashes a replica); seed 3 a partition + byz. The
    // crash path must reproduce too: disk contents, the restart, and
    // the recovery handshake are all functions of the seed.
    for seed in [2u64, 3] {
        let plan = generate_plan(seed);
        let a = run_neo(&plan);
        let b = run_neo(&plan);
        assert_eq!(a, b, "seed {seed}: rerun diverged");
        // The serialized plan from a violation report reruns identically
        // (the rerun path of EXPERIMENTS.md §chaos).
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: ChaosPlan = serde_json::from_str(&json).expect("plan parses");
        assert_eq!(
            run_neo(&back),
            a,
            "seed {seed}: JSON-roundtrip run diverged"
        );
    }
}

#[test]
fn chaos_gap_agreement_is_idempotent_under_duplication() {
    // The sequencer starves all-but-one replica of every 5th packet, so
    // gap agreement runs constantly — while every replica's outgoing
    // messages (gap-decision, gap-prepare, gap-commit included) are
    // duplicated in the fabric. Duplicates must be absorbed: no double
    // execution, no divergence.
    let mut faults = FaultPlan::none();
    for r in 0..N {
        faults = faults.duplicate(Addr::Replica(ReplicaId(r)), 3, 0, u64::MAX);
    }
    let plan = plan_with(40, faults);
    let (sim, violations) = run_checked(&plan, Some(Behavior::DropEveryAtAllButOne(5)));
    assert_eq!(violations, Vec::<String>::new());
    assert!(sim.stats().duplicated > 0, "duplication never fired");
    let rs = replicas(&sim);
    assert!(
        rs.iter().any(|r| r.stats.gaps_recovered > 0),
        "gap recovery never exercised"
    );
    for r in &rs {
        assert_eq!(
            r.stats.double_executions,
            0,
            "replica {} double-executed under duplicated gap messages",
            r.id().0
        );
    }
    assert!(committed(&sim, plan.n_clients as u64) > 0);
}

#[test]
fn chaos_gap_agreement_survives_delay_spikes() {
    // Every 7th packet is dropped by the sequencer for everyone (no-op
    // path), while the gap leader's own messages arrive with a 2ms
    // spike — decisions and commits land late and out of order relative
    // to other replicas' votes.
    let faults = FaultPlan::none().delay_spike(
        Addr::Replica(ReplicaId(0)),
        2 * MILLIS,
        2 * MILLIS,
        20 * MILLIS,
    );
    let plan = plan_with(41, faults);
    let (sim, violations) = run_checked(&plan, Some(Behavior::DropEvery(7)));
    assert_eq!(violations, Vec::<String>::new());
    assert!(sim.stats().delay_spiked > 0, "delay spike never fired");
    let rs = replicas(&sim);
    assert!(
        rs.iter().any(|r| r.stats.noops_committed > 0),
        "no-op gap commits never exercised"
    );
    for r in &rs {
        assert_eq!(r.stats.double_executions, 0);
    }
    // The settled cluster satisfies every invariant one final time.
    assert!(check_replicas(&rs).is_empty());
}

#[test]
fn chaos_tampered_packets_are_rejected_not_delivered() {
    // Integration version of the aom-layer regression tests: every
    // sequencer packet in a 6ms window is corrupted in flight. Replicas
    // must reject them (digest binding / authenticator), recover the
    // lost sequence numbers as gaps, and stay safe; clients commit once
    // the window heals.
    let faults = FaultPlan::none().tamper(Addr::Sequencer(GROUP), 2 * MILLIS, 8 * MILLIS);
    let plan = plan_with(42, faults);
    let (sim, violations) = run_checked(&plan, None);
    assert_eq!(violations, Vec::<String>::new());
    assert!(sim.stats().tampered > 0, "tampering never fired");
    let rs = replicas(&sim);
    let auth_rejected: u64 = rs.iter().map(|r| r.aom_stats().auth_rejected).sum();
    assert!(
        auth_rejected > 0,
        "tampered aom packets must be rejected by the auth/digest checks"
    );
    assert!(
        committed(&sim, plan.n_clients as u64) > 0,
        "clients must recover after the tamper window heals"
    );
}

#[test]
fn chaos_partition_heals_without_divergence() {
    // A 2-2 split (sequencer with replicas 0 and 1) for 8ms: the
    // minority side cannot make progress, and after healing both sides
    // must reconcile onto one log.
    let island = vec![
        Addr::Sequencer(GROUP),
        Addr::Replica(ReplicaId(0)),
        Addr::Replica(ReplicaId(1)),
    ];
    let faults = FaultPlan::none().partition(island, 4 * MILLIS, 12 * MILLIS);
    let plan = plan_with(43, faults);
    let (sim, violations) = run_checked(&plan, None);
    assert_eq!(violations, Vec::<String>::new());
    assert!(sim.stats().dropped_fault > 0, "partition never fired");
    assert!(committed(&sim, plan.n_clients as u64) > 0);
}

#[test]
fn chaos_delay_spike_stale_arrivals_are_absorbed() {
    // A spike larger than the aom gap timeout (100us) on the sequencer:
    // receivers declare drops, then the real packets arrive late and
    // must be rejected as stale — never delivered out of order.
    let faults =
        FaultPlan::none().delay_spike(Addr::Sequencer(GROUP), 500 * MICROS, 3 * MILLIS, 6 * MILLIS);
    let plan = plan_with(44, faults);
    let (sim, violations) = run_checked(&plan, None);
    assert_eq!(violations, Vec::<String>::new());
    assert!(sim.stats().delay_spiked > 0);
    let rs = replicas(&sim);
    // Monotone-delivery invariant holds even though wire arrivals were
    // reordered across the window boundary.
    assert!(check_replicas(&rs).is_empty());
    for r in &rs {
        assert_eq!(r.stats.double_executions, 0);
    }
}

#[test]
fn chaos_crash_restart_sweep_recovers_across_25_seeds() {
    // Every third seed carries a CrashRestart fault; 0..75 yields 25 of
    // them. Each run must stay safe at every slice boundary, make
    // progress, and bring the crashed replica back through the recovery
    // handshake — with the overwhelming majority rejoining from a
    // certified checkpoint rather than replaying from slot 0.
    let seeds: Vec<u64> = (0..75).filter(|s| s % 3 == 2).collect();
    assert_eq!(seeds.len(), 25);
    let mut from_checkpoint = 0u64;
    let mut replies_served = 0u64;
    for &seed in &seeds {
        let plan = generate_plan(seed);
        assert_eq!(
            plan.faults.crash_restarts().len(),
            1,
            "seed {seed} must carry a crash-restart fault"
        );
        let outcome = run_neo(&plan);
        assert!(
            outcome.violations.is_empty(),
            "{}",
            violation_report(&outcome)
        );
        assert!(outcome.committed > 0, "seed {seed} commits nothing");
        assert_eq!(
            outcome.recovered_bases.len(),
            1,
            "seed {seed}: the crashed replica must rejoin and report its base"
        );
        if outcome.recovered_bases[0] > 0 {
            from_checkpoint += 1;
        }
        replies_served += outcome.state_replies_served;
    }
    assert!(
        from_checkpoint >= 20,
        "only {from_checkpoint}/25 restarts resumed from a certified checkpoint"
    );
    assert!(
        replies_served > 0,
        "peers never served a state-transfer reply across the sweep"
    );
}

#[test]
fn chaos_crash_restart_rejoins_from_certified_checkpoint() {
    // Handcrafted: replica 2 crashes at 8ms and restarts at 16ms of a
    // 30ms horizon, with no other faults. By the crash the cluster has
    // certified checkpoints (sync interval 8), so the restarted replica
    // must resume from a non-zero base — never a slot-0 replay — and
    // peers must have served it state-transfer replies.
    let faults =
        FaultPlan::none().crash_restart(Addr::Replica(ReplicaId(2)), 8 * MILLIS, 16 * MILLIS);
    let plan = plan_with(45, faults);
    let outcome = run_neo(&plan);
    assert!(
        outcome.violations.is_empty(),
        "{}",
        violation_report(&outcome)
    );
    assert!(outcome.committed > 0);
    assert_eq!(outcome.recovered_bases.len(), 1);
    assert!(
        outcome.recovered_bases[0] > 0,
        "restart must rejoin from a certified checkpoint, got base {}",
        outcome.recovered_bases[0]
    );
    assert!(outcome.checkpoints_certified > 0);
    assert!(outcome.state_replies_served > 0);
    // The crash path reproduces byte-for-byte like every other scenario.
    assert_eq!(run_neo(&plan), outcome, "crash-restart rerun diverged");
}

#[test]
fn chaos_horizon_is_the_documented_default() {
    // EXPERIMENTS.md documents the rerun command in terms of this
    // horizon; keep the constant and the docs honest.
    assert_eq!(HORIZON, 20 * MILLIS);
    assert_eq!(generate_plan(9).horizon_ns, HORIZON);
}
