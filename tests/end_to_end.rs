//! Workspace-level integration tests: the full stack — crypto, aom,
//! NeoBFT, applications — across both transports.

use neobft::aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{EchoApp, EchoWorkload, KvApp, KvOp, KvResult, YcsbConfig, YcsbGenerator};
use neobft::core::{Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::runtime::AddressBook;
use neobft::sim::{CpuConfig, FaultPlan, NetConfig, SimConfig, Simulator, SECS};
use neobft::wire::{Addr, ClientId, GroupId, ReplicaId, SlotNum};

const GROUP: GroupId = GroupId(0);

fn sim_cluster(
    cfg: &NeoConfig,
    n_clients: usize,
    ops: u64,
    app: impl Fn() -> Box<dyn neobft::app::App>,
    workload: impl Fn(u64) -> Box<dyn neobft::app::Workload>,
) -> Simulator {
    let n = cfg.n;
    let keys = SystemKeys::new(3, n, n_clients);
    let mut sim = Simulator::new(SimConfig {
        net: NetConfig::DATACENTER,
        default_cpu: CpuConfig::IDEAL,
        seed: 3,
        faults: FaultPlan::none(),
    });
    let mut config = ConfigService::new();
    config.register_group(GROUP, (0..n as u32).map(ReplicaId).collect(), cfg.f);
    sim.add_node(Addr::Config, Box::new(config));
    let sequencer = SequencerNode::new(
        GROUP,
        (0..n as u32).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    sim.add_node(Addr::Sequencer(GROUP), Box::new(sequencer));
    for r in 0..n as u32 {
        let replica = Replica::new(ReplicaId(r), cfg.clone(), &keys, CostModel::FREE, app());
        sim.add_node(Addr::Replica(ReplicaId(r)), Box::new(replica));
    }
    for c in 0..n_clients as u64 {
        let mut client = Client::new(
            ClientId(c),
            cfg.clone(),
            &keys,
            CostModel::FREE,
            workload(c),
        );
        client.max_ops = Some(ops);
        sim.add_node(Addr::Client(ClientId(c)), Box::new(client));
    }
    sim
}

#[test]
fn replicated_kv_store_is_linearizable_per_key() {
    // Three clients hammer the same small key space; afterwards every
    // replica's store is identical — the observable consequence of a
    // single agreed order.
    let cfg = NeoConfig::new(1);
    let ycsb = YcsbConfig {
        record_count: 50,
        field_len: 16,
        read_proportion: neobft::app::fixed::fp_ratio(3, 10),
        theta: neobft::app::fixed::fp_ratio(99, 100),
    };
    let mut sim = sim_cluster(
        &cfg,
        3,
        60,
        || Box::new(KvApp::loaded(50, 16)),
        |c| Box::new(YcsbGenerator::new(ycsb, c + 1)),
    );
    sim.run_until(5 * SECS);
    for c in 0..3u64 {
        let client = sim.node_ref::<Client>(Addr::Client(ClientId(c))).unwrap();
        assert_eq!(client.completed.len(), 60, "client {c}");
    }
    // Identical logs ⇒ identical stores.
    let hash = |r: u32| {
        let replica = sim
            .node_ref::<Replica>(Addr::Replica(ReplicaId(r)))
            .unwrap();
        let len = replica.log_len();
        (len, replica.log().hash_at(SlotNum(len.0 - 1)).unwrap())
    };
    let reference = hash(0);
    for r in 1..4 {
        assert_eq!(hash(r), reference);
    }
    // Store contents agree key-by-key.
    let dump = |r: u32| {
        let replica = sim
            .node_ref::<Replica>(Addr::Replica(ReplicaId(r)))
            .unwrap();
        let kv = replica
            .app()
            .as_any_ref()
            .downcast_ref::<KvApp>()
            .expect("kv app");
        (0..50)
            .map(|i| kv.get(&format!("user{i}")).cloned())
            .collect::<Vec<_>>()
    };
    let reference = dump(0);
    for r in 1..4 {
        assert_eq!(dump(r), reference, "replica {r} store diverged");
    }
}

#[test]
fn results_reflect_a_single_global_order() {
    // One writer and one reader on a single key: the reader must never
    // observe a value that was not written by a prefix of the writer's
    // committed operations.
    struct WriteOnly {
        n: u64,
    }
    impl neobft::app::Workload for WriteOnly {
        fn next_ops(&mut self, n: usize) -> Vec<Vec<u8>> {
            (0..n)
                .map(|_| {
                    self.n += 1;
                    KvOp::Put {
                        key: "x".into(),
                        value: self.n.to_le_bytes().to_vec(),
                    }
                    .to_bytes()
                })
                .collect()
        }
    }
    struct ReadOnly;
    impl neobft::app::Workload for ReadOnly {
        fn next_ops(&mut self, n: usize) -> Vec<Vec<u8>> {
            (0..n)
                .map(|_| KvOp::Get { key: "x".into() }.to_bytes())
                .collect()
        }
    }
    let cfg = NeoConfig::new(1);
    let n = cfg.n;
    let keys = SystemKeys::new(4, n, 2);
    let mut sim = Simulator::new(SimConfig {
        net: NetConfig::DATACENTER,
        default_cpu: CpuConfig::IDEAL,
        seed: 4,
        faults: FaultPlan::none(),
    });
    let mut config = ConfigService::new();
    config.register_group(GROUP, (0..n as u32).map(ReplicaId).collect(), 1);
    sim.add_node(Addr::Config, Box::new(config));
    sim.add_node(
        Addr::Sequencer(GROUP),
        Box::new(SequencerNode::new(
            GROUP,
            (0..n as u32).map(ReplicaId).collect(),
            AuthMode::HmacVector,
            SequencerHw::Software(CostModel::FREE),
            &keys,
        )),
    );
    for r in 0..n as u32 {
        sim.add_node(
            Addr::Replica(ReplicaId(r)),
            Box::new(Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(KvApp::new()),
            )),
        );
    }
    let mut writer = Client::new(
        ClientId(0),
        cfg.clone(),
        &keys,
        CostModel::FREE,
        Box::new(WriteOnly { n: 0 }),
    );
    writer.max_ops = Some(50);
    sim.add_node(Addr::Client(ClientId(0)), Box::new(writer));
    let mut reader = Client::new(
        ClientId(1),
        cfg.clone(),
        &keys,
        CostModel::FREE,
        Box::new(ReadOnly),
    );
    reader.max_ops = Some(50);
    sim.add_node(Addr::Client(ClientId(1)), Box::new(reader));
    sim.run_until(5 * SECS);

    let reader = sim.node_ref::<Client>(Addr::Client(ClientId(1))).unwrap();
    assert_eq!(reader.completed.len(), 50);
    // Observed values must be monotonically non-decreasing: reads are
    // totally ordered with the writes.
    let mut last = 0u64;
    for op in &reader.completed {
        if let Some(KvResult::Value(Some(v))) = KvResult::from_bytes(&op.result) {
            let val = u64::from_le_bytes(v.try_into().unwrap());
            assert!(val >= last, "read went backwards: {val} after {last}");
            last = val;
        }
    }
    assert!(last > 0, "the reader observed at least one write");
}

#[test]
fn udp_runtime_commits_echo_ops() {
    // The same state machines over real sockets: a small end-to-end run,
    // deployed through the builder and the fallible spawn API.
    let n = 4;
    let keys = SystemKeys::new(10, n, 1);
    let cfg = NeoConfig::new(1);
    let dep = AddressBook::builder()
        .replicas(n)
        .clients(1)
        .group(GROUP)
        .base_port(46800)
        .build()
        .expect("deployment fits the port space");

    let mut config = ConfigService::new();
    config.register_group(GROUP, dep.replica_ids(), 1);
    let config_h = dep
        .spawn(Box::new(config), dep.config_service())
        .expect("config service spawns");
    let seq = SequencerNode::new(
        GROUP,
        dep.replica_ids(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = dep
        .spawn(Box::new(seq), dep.sequencer())
        .expect("sequencer spawns");
    let replica_hs: Vec<_> = (0..n as u32)
        .map(|r| {
            let replica = Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(EchoApp::new()),
            );
            dep.spawn(Box::new(replica), dep.replica(r as usize))
                .expect("replica spawns")
        })
        .collect();
    let mut client = Client::new(
        ClientId(0),
        cfg,
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(32, 1)),
    );
    client.max_ops = Some(30);
    let client_h = dep
        .spawn(Box::new(client), dep.client(0))
        .expect("client spawns");

    // Wait up to 10 s of wall time for completion.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    std::thread::sleep(std::time::Duration::from_millis(300));
    let node = loop {
        if std::time::Instant::now() > deadline {
            break client_h.try_shutdown().expect("client joins");
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        // No way to peek while running; rely on generous sleep then stop.
        if std::time::Instant::now() > deadline - std::time::Duration::from_secs(8) {
            break client_h.try_shutdown().expect("client joins");
        }
    };
    let client = node.as_any().downcast_ref::<Client>().unwrap();
    assert_eq!(client.completed.len(), 30, "all UDP ops commit");
    for h in replica_hs {
        let node = h.try_shutdown().expect("replica joins");
        let replica = node.as_any().downcast_ref::<Replica>().unwrap();
        assert_eq!(replica.stats.executed, 30);
    }
    seq_h.try_shutdown().expect("sequencer joins");
    config_h.try_shutdown().expect("config service joins");
}
