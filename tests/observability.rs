//! Observability integration tests: a simulated NeoBFT cluster emits
//! per-phase counters and latency histograms through the `Context`
//! metrics API, and disabling the layer changes nothing about the
//! protocol outcome.

use neobft::aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{EchoApp, EchoWorkload};
use neobft::core::{Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::sim::obs::ObsConfig;
use neobft::sim::{CpuConfig, EventKind, FaultPlan, NetConfig, SimConfig, Simulator, SECS};
use neobft::wire::{Addr, ClientId, GroupId, ReplicaId};

const GROUP: GroupId = GroupId(0);
const OPS: u64 = 20;

/// A 4-replica NeoBFT cluster (f = 1) with one closed-loop echo client
/// on a lossless fabric.
fn neo_cluster(obs: ObsConfig) -> Simulator {
    let cfg = NeoConfig::new(1);
    let n = cfg.n;
    let keys = SystemKeys::new(7, n, 1);
    let mut sim = Simulator::new(SimConfig {
        net: NetConfig::DATACENTER,
        default_cpu: CpuConfig::IDEAL,
        seed: 7,
        faults: FaultPlan::none(),
    });
    sim.set_obs(obs);
    let mut config = ConfigService::new();
    config.register_group(GROUP, (0..n as u32).map(ReplicaId).collect(), cfg.f);
    sim.add_node(Addr::Config, Box::new(config));
    sim.add_node(
        Addr::Sequencer(GROUP),
        Box::new(SequencerNode::new(
            GROUP,
            (0..n as u32).map(ReplicaId).collect(),
            AuthMode::HmacVector,
            SequencerHw::Software(CostModel::FREE),
            &keys,
        )),
    );
    for r in 0..n as u32 {
        sim.add_node(
            Addr::Replica(ReplicaId(r)),
            Box::new(Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(EchoApp::new()),
            )),
        );
    }
    let mut client = Client::new(
        ClientId(0),
        cfg,
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(32, 1)),
    );
    client.max_ops = Some(OPS);
    sim.add_node(Addr::Client(ClientId(0)), Box::new(client));
    sim
}

fn completed(sim: &Simulator) -> usize {
    sim.node_ref::<Client>(Addr::Client(ClientId(0)))
        .expect("client")
        .completed
        .len()
}

#[test]
fn lossless_run_commits_without_gap_agreement() {
    let mut sim = neo_cluster(ObsConfig::default());
    sim.run_until(5 * SECS);
    assert_eq!(completed(&sim), OPS as usize);

    let agg = sim.aggregate_metrics();
    // Every replica executes and replies on the speculative fast path.
    assert!(
        agg.event(EventKind::Commit) >= OPS * 4,
        "commits: {}",
        agg.event(EventKind::Commit)
    );
    assert_eq!(
        agg.event(EventKind::SpeculativeExecute),
        agg.event(EventKind::Commit),
        "every execution on a lossless fabric is speculative-then-replied"
    );
    assert_eq!(agg.event(EventKind::RequestReceived), OPS * 4);
    // No drops ⇒ the gap agreement protocol never runs.
    assert_eq!(agg.event(EventKind::GapFind), 0);
    assert_eq!(agg.event(EventKind::GapCommit), 0);
    assert_eq!(agg.event(EventKind::ViewChange), 0);
    // Client latency histogram is populated and ordered.
    let lat = agg.histograms.get("client.latency_ns").expect("latency");
    assert_eq!(lat.count, OPS);
    assert!(lat.min > 0 && lat.p50 <= lat.p99 && lat.p99 <= lat.max);
    assert_eq!(agg.counters.get("client.ops_completed"), Some(&OPS));

    // Per-replica snapshots carry the same phases individually.
    for r in 0..4u32 {
        let snap = sim
            .metrics_snapshot(Addr::Replica(ReplicaId(r)))
            .expect("replica snapshot");
        assert_eq!(snap.event(EventKind::Commit), OPS, "replica {r}");
        assert_eq!(snap.event(EventKind::GapCommit), 0, "replica {r}");
    }
}

#[test]
fn disabled_observability_changes_nothing() {
    let mut on = neo_cluster(ObsConfig::default());
    let mut off = neo_cluster(ObsConfig::disabled());
    on.run_until(5 * SECS);
    off.run_until(5 * SECS);
    // Same protocol outcome, op for op.
    let ops_on = &on
        .node_ref::<Client>(Addr::Client(ClientId(0)))
        .unwrap()
        .completed;
    let ops_off = &off
        .node_ref::<Client>(Addr::Client(ClientId(0)))
        .unwrap()
        .completed;
    assert_eq!(ops_on, ops_off, "observability must not perturb the run");
    // But the disabled registry recorded nothing at all.
    let agg = off.aggregate_metrics();
    assert!(agg.events.is_empty());
    assert!(agg.counters.is_empty());
    assert!(agg.histograms.is_empty());
}

#[test]
fn event_trace_records_protocol_history() {
    let mut sim = neo_cluster(ObsConfig::default().with_trace(4096));
    sim.run_until(5 * SECS);
    assert_eq!(completed(&sim), OPS as usize);
    let replica = Addr::Replica(ReplicaId(0));
    let trace = sim.metrics(replica).expect("replica metrics").take_trace();
    assert!(!trace.is_empty(), "trace captured events");
    // Chronological, and attributed to the node that emitted them.
    for pair in trace.windows(2) {
        assert!(pair[0].at <= pair[1].at);
    }
    assert!(trace.iter().all(|rec| rec.node == replica));
    // The first protocol event a replica sees is an incoming request.
    assert_eq!(
        trace[0].event.kind(),
        EventKind::RequestReceived,
        "first event: {:?}",
        trace[0]
    );
}
