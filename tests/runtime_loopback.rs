//! Loopback UDP integration tests for the batched tokio runtime: a real
//! 4-replica NeoBFT group committing requests over 127.0.0.1 sockets,
//! a verify-stage saturation test (serial vs pooled verification must be
//! observably identical, and worker panics must surface as typed
//! errors), plus a direct probe of the executor's event-ordering
//! contract (timers beat delayed sends at equal deadlines, as in the
//! simulator).

use neobft::aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{EchoApp, EchoWorkload};
use neobft::core::{Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys, VerifyPool, VerifyTask};
use neobft::runtime::{AddressBook, RuntimeError};
use neobft::sim::{Context, Node, TimerId};
use neobft::wire::{Addr, ClientId, GroupId, Payload, ReplicaId};
use std::any::Any;
use std::sync::Arc;
use std::time::{Duration, Instant};

const GROUP: GroupId = GroupId(0);

#[test]
fn loopback_group_commits_requests() {
    // Full stack over loopback UDP: config service, software sequencer,
    // f = 1 replica group, one closed-loop client with a fixed op budget.
    let n = 4;
    let ops = 20usize;
    let keys = SystemKeys::new(11, n, 1);
    let cfg = NeoConfig::new(1);
    let dep = AddressBook::builder()
        .replicas(n)
        .clients(1)
        .group(GROUP)
        .base_port(46900)
        .build()
        .expect("deployment fits the port space");

    let mut config = ConfigService::new();
    config.register_group(GROUP, dep.replica_ids(), 1);
    let config_h = dep
        .spawn(Box::new(config), dep.config_service())
        .expect("config service spawns");
    let seq = SequencerNode::new(
        GROUP,
        dep.replica_ids(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = dep
        .spawn(Box::new(seq), dep.sequencer())
        .expect("sequencer spawns");
    let replica_hs: Vec<_> = (0..n as u32)
        .map(|r| {
            let replica = Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(EchoApp::new()),
            );
            dep.spawn(Box::new(replica), dep.replica(r as usize))
                .expect("replica spawns")
        })
        .collect();
    let mut client = Client::new(
        ClientId(0),
        cfg,
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(32, 7)),
    );
    client.max_ops = Some(ops as u64);
    let client_h = dep
        .spawn(Box::new(client), dep.client(0))
        .expect("client spawns");

    // Poll replica 0's commit events until the op budget is executed
    // (bounded by a generous wall-clock deadline).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let commits = replica_hs[0]
            .metrics_snapshot()
            .event(neobft::sim::obs::EventKind::Commit);
        if commits >= ops as u64 || Instant::now() > deadline {
            break;
        }
    }
    // Let the last replies reach the client before stopping it.
    std::thread::sleep(Duration::from_millis(200));
    let node = client_h.try_shutdown().expect("client joins");
    let client = node.as_any().downcast_ref::<Client>().unwrap();
    assert_eq!(client.completed.len(), ops, "all loopback ops commit");

    for h in replica_hs {
        // The batched loop dispatched at least one multi-event wakeup's
        // worth of work; the histogram proves the metric is recorded.
        let snap = h.metrics_snapshot();
        let batches = snap
            .histograms
            .get("runtime.batch_events")
            .expect("batch-size histogram recorded");
        assert!(batches.count > 0, "replica recorded batch sizes");
        let node = h.try_shutdown().expect("replica joins");
        let replica = node.as_any().downcast_ref::<Replica>().unwrap();
        assert_eq!(replica.stats.executed, ops as u64);
    }
    seq_h.try_shutdown().expect("sequencer joins");
    config_h.try_shutdown().expect("config service joins");
}

/// One full loopback run: Byzantine-network group (so replica confirm
/// signatures — the work the verify pool parallelizes — are on the
/// critical path) committing `ops` closed-loop client ops, with
/// `verify_workers` pool threads per replica (0 = serial inline).
/// Returns the client's per-request results and every replica's
/// execution digests.
fn run_verify_group(
    base_port: u16,
    verify_workers: usize,
    ops: usize,
) -> (Vec<(u64, Vec<u8>)>, Vec<Vec<Option<u64>>>) {
    let n = 4;
    let keys = SystemKeys::new(11, n, 1);
    let cfg = NeoConfig::new(1)
        .with_byzantine_network()
        .with_verify_workers(verify_workers);
    let dep = AddressBook::builder()
        .replicas(n)
        .clients(1)
        .group(GROUP)
        .base_port(base_port)
        .build()
        .expect("deployment fits the port space");

    let mut config = ConfigService::new();
    config.register_group(GROUP, dep.replica_ids(), 1);
    let config_h = dep
        .spawn(Box::new(config), dep.config_service())
        .expect("config service spawns");
    let seq = SequencerNode::new(
        GROUP,
        dep.replica_ids(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = dep
        .spawn(Box::new(seq), dep.sequencer())
        .expect("sequencer spawns");
    let replica_hs: Vec<_> = (0..n as u32)
        .map(|r| {
            let replica = Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(EchoApp::new()),
            );
            dep.spawn(Box::new(replica), dep.replica(r as usize))
                .expect("replica spawns")
        })
        .collect();
    let mut client = Client::new(
        ClientId(0),
        cfg,
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(32, 7)),
    );
    client.max_ops = Some(ops as u64);
    let client_h = dep
        .spawn(Box::new(client), dep.client(0))
        .expect("client spawns");

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let commits = replica_hs[0]
            .metrics_snapshot()
            .event(neobft::sim::obs::EventKind::Commit);
        if commits >= ops as u64 || Instant::now() > deadline {
            break;
        }
    }
    std::thread::sleep(Duration::from_millis(200));
    let node = client_h.try_shutdown().expect("client joins");
    let client = node.as_any().downcast_ref::<Client>().unwrap();
    let completed: Vec<(u64, Vec<u8>)> = client
        .completed
        .iter()
        .map(|op| (op.request_id.0, op.result.clone().to_vec()))
        .collect();
    let mut digests = Vec::new();
    for h in replica_hs {
        let node = h.try_shutdown().expect("replica joins");
        let replica = node.as_any().downcast_ref::<Replica>().unwrap();
        digests.push(replica.exec_digests().to_vec());
    }
    seq_h.try_shutdown().expect("sequencer joins");
    config_h.try_shutdown().expect("config service joins");
    (completed, digests)
}

#[test]
fn verify_pool_matches_serial_under_saturation() {
    // The same closed-loop workload, three ways: serial inline
    // verification, a 1-worker pool, a 4-worker pool. The pipeline may
    // only change *where* verification runs — commit ordering and every
    // (client, request) → result binding must be identical.
    let ops = 30usize;
    let (serial, serial_digests) = run_verify_group(47200, 0, ops);
    let (pooled1, pooled1_digests) = run_verify_group(47230, 1, ops);
    let (pooled4, pooled4_digests) = run_verify_group(47260, 4, ops);

    assert_eq!(serial.len(), ops, "serial run commits the full budget");
    assert_eq!(
        serial, pooled1,
        "1-worker pool must match serial results exactly"
    );
    assert_eq!(
        serial, pooled4,
        "4-worker pool must match serial results exactly"
    );

    // Safety within each run: every replica that executed a slot agrees
    // on its digest (commit ordering is identical across replicas).
    for digests in [&serial_digests, &pooled1_digests, &pooled4_digests] {
        let r0 = &digests[0];
        for (r, other) in digests.iter().enumerate().skip(1) {
            for (slot, (a, b)) in r0.iter().zip(other.iter()).enumerate() {
                if let (Some(a), Some(b)) = (a, b) {
                    assert_eq!(a, b, "replica {r} diverges at slot {slot}");
                }
            }
        }
    }
    // And across runs: replica 0's executed prefix is the same ordering
    // regardless of verification mode.
    let executed: Vec<Vec<u64>> = [&serial_digests, &pooled1_digests, &pooled4_digests]
        .iter()
        .map(|d| d[0].iter().flatten().copied().collect())
        .collect();
    assert_eq!(executed[0], executed[1], "1-worker ordering matches serial");
    assert_eq!(executed[0], executed[2], "4-worker ordering matches serial");
}

/// A verify task that kills its worker.
struct PanickingTask;
impl VerifyTask for PanickingTask {
    fn run(&mut self) {
        panic!("injected verify-worker panic");
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A node that submits a panicking task to its pool on INIT.
struct PoisonNode {
    pool: Arc<VerifyPool>,
}

impl Node for PoisonNode {
    fn on_message(&mut self, _from: Addr, _payload: &[u8], _ctx: &mut dyn Context) {}
    fn on_timer(&mut self, _id: TimerId, kind: u32, _ctx: &mut dyn Context) {
        if kind == neobft::sim::sim::INIT_TIMER_KIND {
            self.pool.submit(0, Box::new(PanickingTask));
        }
    }
    fn verify_pool(&self) -> Option<Arc<VerifyPool>> {
        Some(self.pool.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn poisoned_verify_pool_surfaces_as_typed_error() {
    let dep = AddressBook::builder()
        .replicas(1)
        .clients(0)
        .group(GROUP)
        .base_port(47290)
        .build()
        .expect("deployment fits the port space");
    let node = PoisonNode {
        pool: Arc::new(VerifyPool::new(2)),
    };
    let h = dep
        .spawn(Box::new(node), dep.replica(0))
        .expect("node spawns");

    // The worker panic must stop the node loop promptly — no hang.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !h.verify_poisoned() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(h.verify_poisoned(), "poisoning is observable on the handle");
    let err = h
        .try_shutdown()
        .expect_err("shutdown reports the poisoning");
    assert!(
        matches!(err, RuntimeError::VerifyPoolPoisoned(addr) if addr == dep.replica(0)),
        "typed error names the node: {err}"
    );
}

/// On INIT, schedules payload `A` with `send_after(delay)` and a timer at
/// the *same* delay whose handler sends `B` immediately. The executor's
/// tie-break (timers before delayed sends at equal deadlines) means the
/// peer must observe `B` before `A`.
struct TieBreakSender {
    peer: Addr,
}

impl Node for TieBreakSender {
    fn on_message(&mut self, _from: Addr, _payload: &[u8], _ctx: &mut dyn Context) {}
    fn on_timer(&mut self, _id: TimerId, kind: u32, ctx: &mut dyn Context) {
        const DELAY_NS: u64 = 50_000_000; // 50 ms
        if kind == neobft::sim::sim::INIT_TIMER_KIND {
            ctx.send_after(self.peer, Payload::copy_from_slice(b"A"), DELAY_NS);
            ctx.set_timer(DELAY_NS, 7);
        } else {
            ctx.send(self.peer, Payload::copy_from_slice(b"B"));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records the first byte of every datagram it receives, in order.
struct Recorder {
    order: Vec<u8>,
}

impl Node for Recorder {
    fn on_message(&mut self, _from: Addr, payload: &[u8], _ctx: &mut dyn Context) {
        if let Some(b) = payload.first() {
            self.order.push(*b);
        }
    }
    fn on_timer(&mut self, _id: TimerId, _kind: u32, _ctx: &mut dyn Context) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// On INIT, sends `X` twice to an address missing from the book (both
/// sends fail) and `Y` once to its peer.
struct FlakySender {
    peer: Addr,
    missing: Addr,
}

impl Node for FlakySender {
    fn on_message(&mut self, _from: Addr, _payload: &[u8], _ctx: &mut dyn Context) {}
    fn on_timer(&mut self, _id: TimerId, kind: u32, ctx: &mut dyn Context) {
        if kind == neobft::sim::sim::INIT_TIMER_KIND {
            ctx.send(self.missing, Payload::copy_from_slice(b"X"));
            ctx.send(self.missing, Payload::copy_from_slice(b"X"));
            ctx.send(self.peer, Payload::copy_from_slice(b"Y"));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn send_failures_are_labeled_and_flight_recorder_captures_packets() {
    use neobft::runtime::{try_spawn_node_with_obs, ObsExporter};
    use neobft::sim::obs::ObsConfig;

    let dep = AddressBook::builder()
        .replicas(2)
        .clients(0)
        .group(GROUP)
        .base_port(46930)
        .build()
        .expect("deployment fits the port space");
    let missing = Addr::Client(ClientId(9));
    let obs = ObsConfig::flight_recorder();
    let recorder_h = try_spawn_node_with_obs(
        Box::new(Recorder { order: Vec::new() }),
        dep.replica(1),
        dep.book().clone(),
        obs,
    )
    .expect("recorder spawns");
    let sender_h = try_spawn_node_with_obs(
        Box::new(FlakySender {
            peer: dep.replica(1),
            missing,
        }),
        dep.replica(0),
        dep.book().clone(),
        obs,
    )
    .expect("sender spawns");

    let stream_path = std::env::temp_dir().join(format!("obs-stream-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&stream_path);
    let exporter = ObsExporter::start(
        vec![recorder_h.obs_source(), sender_h.obs_source()],
        &stream_path,
        Duration::from_millis(25),
    )
    .expect("exporter starts");

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let delivered = !recorder_h.flight().packets.is_empty();
        let failed = sender_h.metrics().counter("runtime_send_failed") >= 2;
        if (delivered && failed) || Instant::now() > deadline {
            break;
        }
    }

    // The global total and the per-destination label agree, and the
    // label names the unreachable peer.
    let snap = sender_h.metrics_snapshot();
    assert_eq!(snap.counters.get("runtime_send_failed"), Some(&2));
    assert_eq!(snap.counters.get("runtime.send_failed.c9"), Some(&2));
    assert!(!snap.counters.contains_key("runtime.send_failed.r1"));

    // The receive path digested the delivered datagram.
    let flight = recorder_h.flight();
    let pkt = flight.packets.last().expect("packet digested");
    assert_eq!(
        (pkt.from, pkt.to, pkt.len),
        (dep.replica(0), dep.replica(1), 1)
    );
    assert_eq!(pkt.digest, neobft::sim::obs::fnv1a(b"Y"));

    // Stopping the exporter flushes a final batch; the stream parses as
    // one ObsStreamLine per node per tick.
    exporter.stop();
    let text = std::fs::read_to_string(&stream_path).expect("stream written");
    let lines: Vec<neobft::sim::obs::ObsStreamLine> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid JSONL"))
        .collect();
    assert!(lines.len() >= 2, "at least one tick per node");
    assert!(lines
        .iter()
        .any(|l| l.node == dep.replica(0)
            && l.snapshot.counters.get("runtime_send_failed") == Some(&2)));
    let _ = std::fs::remove_file(&stream_path);

    recorder_h.try_shutdown().expect("recorder joins");
    sender_h.try_shutdown().expect("sender joins");
}

/// Minimal HTTP/1.1 GET against a `TelemetryServer` (it closes the
/// connection after one response, so read-to-end delimits the body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect telemetry");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("well-formed response");
    (head.to_string(), body.to_string())
}

/// Pull `neobft_events_total{node="<node>",kind="commit"} N` out of a
/// Prometheus exposition body.
fn scraped_commits(body: &str, node: &str) -> u64 {
    let needle = format!("neobft_events_total{{node=\"{node}\",kind=\"commit\"}} ");
    body.lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .map_or(0, |v| v.parse().expect("integer sample"))
}

#[test]
fn telemetry_endpoint_serves_live_scrapes_and_health() {
    use neobft::runtime::RuntimeTelemetry;
    use neobft::sim::TelemetryServer;

    // Same full loopback stack as `loopback_group_commits_requests`,
    // plus a scrape endpoint over every handle.
    let n = 4;
    let ops = 20usize;
    let keys = SystemKeys::new(11, n, 1);
    let cfg = NeoConfig::new(1);
    let dep = AddressBook::builder()
        .replicas(n)
        .clients(1)
        .group(GROUP)
        .base_port(47350)
        .build()
        .expect("deployment fits the port space");

    let mut config = ConfigService::new();
    config.register_group(GROUP, dep.replica_ids(), 1);
    let config_h = dep
        .spawn(Box::new(config), dep.config_service())
        .expect("config service spawns");
    let seq = SequencerNode::new(
        GROUP,
        dep.replica_ids(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = dep
        .spawn(Box::new(seq), dep.sequencer())
        .expect("sequencer spawns");
    let replica_hs: Vec<_> = (0..n as u32)
        .map(|r| {
            let replica = Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(EchoApp::new()),
            );
            dep.spawn(Box::new(replica), dep.replica(r as usize))
                .expect("replica spawns")
        })
        .collect();
    let mut client = Client::new(
        ClientId(0),
        cfg,
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(32, 7)),
    );
    client.max_ops = Some(ops as u64);
    let client_h = dep
        .spawn(Box::new(client), dep.client(0))
        .expect("client spawns");

    let mut provider = RuntimeTelemetry::from_handles(replica_hs.iter());
    provider.add(&seq_h);
    provider.add(&config_h);
    provider.add(&client_h);
    // Port 0: the OS picks a free port, so this test cannot collide
    // with the fixed loopback port ranges used elsewhere in this file.
    let server =
        TelemetryServer::start("127.0.0.1:0", Arc::new(provider)).expect("telemetry binds");
    let addr = server.local_addr();

    // First scrape as soon as anything commits; second after the full
    // op budget — the counter must advance between live scrapes.
    let deadline = Instant::now() + Duration::from_secs(10);
    let early = loop {
        std::thread::sleep(Duration::from_millis(50));
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "scrape ok: {head}");
        if scraped_commits(&body, "r0") > 0 || Instant::now() > deadline {
            break scraped_commits(&body, "r0");
        }
    };
    assert!(early > 0, "a commit was scraped before the deadline");
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let commits = replica_hs[0]
            .metrics_snapshot()
            .event(neobft::sim::obs::EventKind::Commit);
        if commits >= ops as u64 || Instant::now() > deadline {
            break;
        }
    }
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape ok: {head}");
    let late = scraped_commits(&body, "r0");
    assert!(
        late >= ops as u64 && late >= early,
        "commit counter advances across scrapes ({early} -> {late})"
    );
    // Exposition shape: typed families, per-node samples.
    assert!(body.contains("# TYPE neobft_events_total counter"));
    assert!(body.contains("# TYPE neobft_replica_messages_in_total counter"));
    assert!(body.contains("node=\"c0\""), "client registry is scraped");

    // Health: every node reports; replicas carry a protocol document
    // published by the node loop itself.
    std::thread::sleep(Duration::from_millis(300)); // one HEALTH_REFRESH past the last commit
    let (head, body) = http_get(addr, "/health");
    assert!(head.starts_with("HTTP/1.1 200"), "health ok: {head}");
    let docs: Vec<serde_json::Value> = serde_json::from_str(&body).expect("health is JSON");
    assert_eq!(docs.len(), n + 3, "one document per registered handle");
    let r0 = docs
        .iter()
        .find(|d| d["node"] == "r0")
        .expect("replica 0 reports");
    assert_eq!(r0["healthy"], true);
    assert!(r0["committed"].as_u64().expect("committed count") >= ops as u64);
    assert_eq!(r0["protocol"]["role"], "replica", "protocol doc: {r0}");

    drop(server);
    for h in replica_hs {
        h.try_shutdown().expect("replica joins");
    }
    client_h.try_shutdown().expect("client joins");
    seq_h.try_shutdown().expect("sequencer joins");
    config_h.try_shutdown().expect("config service joins");
}

/// On INIT, sends one datagram to each of 16 distinct missing clients —
/// twice the send-failure label cap.
struct ScatterSender;

impl Node for ScatterSender {
    fn on_message(&mut self, _from: Addr, _payload: &[u8], _ctx: &mut dyn Context) {}
    fn on_timer(&mut self, _id: TimerId, kind: u32, ctx: &mut dyn Context) {
        if kind == neobft::sim::sim::INIT_TIMER_KIND {
            for c in 20..36 {
                ctx.send(Addr::Client(ClientId(c)), Payload::copy_from_slice(b"X"));
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn send_failure_labels_are_cardinality_bounded() {
    use neobft::runtime::try_spawn_node_with_obs;
    use neobft::sim::obs::ObsConfig;

    let dep = AddressBook::builder()
        .replicas(1)
        .clients(0)
        .group(GROUP)
        .base_port(47380)
        .build()
        .expect("deployment fits the port space");
    let h = try_spawn_node_with_obs(
        Box::new(ScatterSender),
        dep.replica(0),
        dep.book().clone(),
        ObsConfig::default(),
    )
    .expect("sender spawns");

    let deadline = Instant::now() + Duration::from_secs(5);
    while h.metrics().counter("runtime_send_failed") < 16 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let snap = h.metrics_snapshot();
    assert_eq!(snap.counters.get("runtime_send_failed"), Some(&16));
    // The first 8 distinct destinations own labels; the other 8 share
    // the overflow bucket, so the family cannot grow with the address
    // space an adversarial roster names.
    let labeled: Vec<&String> = snap
        .counters
        .keys()
        .filter(|k| k.starts_with("runtime.send_failed.") && !k.ends_with(".other"))
        .collect();
    assert_eq!(labeled.len(), 8, "label cap holds: {labeled:?}");
    assert_eq!(snap.counters.get("runtime.send_failed.other"), Some(&8));

    h.try_shutdown().expect("sender joins");
}

#[test]
fn timer_beats_delayed_send_at_equal_deadline() {
    let dep = AddressBook::builder()
        .replicas(2)
        .clients(0)
        .group(GROUP)
        .base_port(46960)
        .build()
        .expect("deployment fits the port space");
    let recorder_addr = dep.replica(1);
    let sender = TieBreakSender {
        peer: recorder_addr,
    };
    let recorder_h = dep
        .spawn(Box::new(Recorder { order: Vec::new() }), recorder_addr)
        .expect("recorder spawns");
    let sender_h = dep
        .spawn(Box::new(sender), dep.replica(0))
        .expect("sender spawns");

    // Both deliveries are due 50 ms after INIT. The recorder's batch
    // histogram sums dispatched events (its own INIT plus the two
    // datagrams), so poll it instead of sleeping a fixed budget.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let events_dispatched = recorder_h
            .metrics_snapshot()
            .histograms
            .get("runtime.batch_events")
            .map(|h| h.sum)
            .unwrap_or(0);
        if events_dispatched >= 3 || Instant::now() > deadline {
            break;
        }
    }
    let node = recorder_h.try_shutdown().expect("recorder joins");
    let recorder = node.as_any().downcast_ref::<Recorder>().unwrap();
    assert_eq!(
        recorder.order,
        vec![b'B', b'A'],
        "timer-driven send must be flushed before the delayed send due at \
         the same deadline"
    );
    sender_h.try_shutdown().expect("sender joins");
}
