//! A BFT-replicated limit-order matching engine — the kind of
//! latency-critical permissioned-blockchain workload (exchange trading)
//! the paper's introduction motivates (§2.3 cites ASX and SGX, the
//! Singapore Exchange).
//!
//! A custom [`App`] implements a deterministic price-time-priority order
//! book with undo support (so NeoBFT's speculative execution can roll it
//! back); three trading clients stream orders through the replicated
//! engine over localhost UDP.
//!
//! ```bash
//! cargo run --release --example trading_gateway
//! ```

use neobft::aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{App, Workload};
use neobft::core::{BatchPolicy, Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::runtime::{try_spawn_node, AddressBook};
use neobft::wire::{Addr, ClientId, GroupId, ReplicaId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// A limit order.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
enum Side {
    Buy,
    Sell,
}

#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
struct Order {
    side: Side,
    /// Limit price in ticks.
    price: u64,
    /// Quantity.
    qty: u64,
    /// Trader tag (for the fill report).
    trader: u64,
}

#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
struct Fill {
    price: u64,
    qty: u64,
    maker: u64,
    taker: u64,
}

/// Deterministic price-time-priority matching engine with an undo log.
#[derive(Default)]
struct MatchingEngine {
    /// Resting bids: price → FIFO of (qty, trader, order-id).
    bids: BTreeMap<u64, Vec<(u64, u64, u64)>>,
    /// Resting asks.
    asks: BTreeMap<u64, Vec<(u64, u64, u64)>>,
    next_order_id: u64,
    trades: u64,
    volume: u64,
    /// Undo log: snapshots of (bids, asks, next_id, trades, volume).
    /// Simple but correct; order books at exchange scale would log
    /// deltas instead.
    undo: Vec<(
        BTreeMap<u64, Vec<(u64, u64, u64)>>,
        BTreeMap<u64, Vec<(u64, u64, u64)>>,
        u64,
        u64,
        u64,
    )>,
}

impl MatchingEngine {
    fn execute_order(&mut self, order: Order) -> Vec<Fill> {
        let mut fills = Vec::new();
        let mut remaining = order.qty;
        let taker = order.trader;
        match order.side {
            Side::Buy => {
                // Match against asks from the lowest price ≤ limit.
                while remaining > 0 {
                    let Some((&price, _)) = self.asks.iter().next() else {
                        break;
                    };
                    if price > order.price {
                        break;
                    }
                    let level = self.asks.get_mut(&price).expect("exists");
                    while remaining > 0 && !level.is_empty() {
                        let (qty, maker, _) = level[0];
                        let traded = qty.min(remaining);
                        remaining -= traded;
                        fills.push(Fill {
                            price,
                            qty: traded,
                            maker,
                            taker,
                        });
                        if traded == qty {
                            level.remove(0);
                        } else {
                            level[0].0 = qty - traded;
                        }
                    }
                    if level.is_empty() {
                        self.asks.remove(&price);
                    }
                }
                if remaining > 0 {
                    let id = self.next_order_id;
                    self.next_order_id += 1;
                    self.bids
                        .entry(order.price)
                        .or_default()
                        .push((remaining, taker, id));
                }
            }
            Side::Sell => {
                while remaining > 0 {
                    let Some((&price, _)) = self.bids.iter().next_back() else {
                        break;
                    };
                    if price < order.price {
                        break;
                    }
                    let level = self.bids.get_mut(&price).expect("exists");
                    while remaining > 0 && !level.is_empty() {
                        let (qty, maker, _) = level[0];
                        let traded = qty.min(remaining);
                        remaining -= traded;
                        fills.push(Fill {
                            price,
                            qty: traded,
                            maker,
                            taker,
                        });
                        if traded == qty {
                            level.remove(0);
                        } else {
                            level[0].0 = qty - traded;
                        }
                    }
                    if level.is_empty() {
                        self.bids.remove(&price);
                    }
                }
                if remaining > 0 {
                    let id = self.next_order_id;
                    self.next_order_id += 1;
                    self.asks
                        .entry(order.price)
                        .or_default()
                        .push((remaining, taker, id));
                }
            }
        }
        for f in &fills {
            self.trades += 1;
            self.volume += f.qty;
        }
        fills
    }
}

impl App for MatchingEngine {
    fn execute(&mut self, op: &[u8]) -> Vec<u8> {
        self.undo.push((
            self.bids.clone(),
            self.asks.clone(),
            self.next_order_id,
            self.trades,
            self.volume,
        ));
        let Ok(order) = bincode::deserialize::<Order>(op) else {
            return bincode::serialize::<Vec<Fill>>(&vec![]).expect("encodes");
        };
        let fills = self.execute_order(order);
        bincode::serialize(&fills).expect("encodes")
    }

    fn undo(&mut self) {
        let (bids, asks, id, trades, volume) = self.undo.pop().expect("nothing to undo");
        self.bids = bids;
        self.asks = asks;
        self.next_order_id = id;
        self.trades = trades;
        self.volume = volume;
    }

    fn executed(&self) -> u64 {
        self.undo.len() as u64
    }

    fn compact(&mut self, keep_last: u64) {
        let keep = keep_last as usize;
        if self.undo.len() > keep {
            let drop_n = self.undo.len() - keep;
            self.undo.drain(..drop_n);
        }
    }

    fn as_any_ref(&self) -> &dyn std::any::Any {
        self
    }
}

/// Order-flow generator: alternating aggressive/resting orders around a
/// drifting mid price. Deterministic per trader.
struct OrderFlow {
    trader: u64,
    tick: u64,
}

impl OrderFlow {
    fn next_order(&mut self) -> Vec<u8> {
        self.tick += 1;
        let x = self
            .trader
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.tick * 0x2545_F491_4F6C_DD1D);
        let mid = 1000 + (self.tick / 7) % 50;
        let side = if x & 1 == 0 { Side::Buy } else { Side::Sell };
        let aggressive = x & 2 == 0;
        let price = match (side, aggressive) {
            (Side::Buy, true) => mid + 2,
            (Side::Buy, false) => mid - 1 - (x >> 3) % 3,
            (Side::Sell, true) => mid.saturating_sub(2),
            (Side::Sell, false) => mid + 1 + (x >> 3) % 3,
        };
        let order = Order {
            side,
            price,
            qty: 1 + (x >> 8) % 10,
            trader: self.trader,
        };
        bincode::serialize(&order).expect("encodes")
    }
}

impl Workload for OrderFlow {
    /// Batch-first: the client driver pulls as many orders as its batch
    /// window has room for; a gateway burst rides one aom slot.
    fn next_ops(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_order()).collect()
    }

    /// A committed order's result must decode as a fill report.
    fn check(&self, _op: &[u8], result: &[u8]) -> bool {
        bincode::deserialize::<Vec<Fill>>(result).is_ok()
    }
}

fn main() {
    let group = GroupId(0);
    let n = 4;
    let traders = 3usize;
    let orders_each = 300u64;
    let keys = SystemKeys::new(88, n, traders);
    // Adaptive batching: bursts of orders share one aom slot (one
    // sequencer stamp, one MAC vector, one reply quorum per batch).
    let cfg = NeoConfig::new(1).with_batch(BatchPolicy::adaptive(16));
    let book = AddressBook::localhost(n, traders, group, 45200);

    println!("BFT trading gateway — {traders} traders, replicated matching engine (f = 1)");

    let mut config = ConfigService::new();
    config.register_group(group, (0..n as u32).map(ReplicaId).collect(), 1);
    let config_h = try_spawn_node(Box::new(config), Addr::Config, book.clone())
        .expect("config service spawns");

    let sequencer = SequencerNode::new(
        group,
        (0..n as u32).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = try_spawn_node(Box::new(sequencer), Addr::Sequencer(group), book.clone())
        .expect("sequencer spawns");

    let replica_hs: Vec<_> = (0..n as u32)
        .map(|r| {
            let replica = Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(MatchingEngine::default()),
            );
            try_spawn_node(Box::new(replica), Addr::Replica(ReplicaId(r)), book.clone())
                .expect("replica spawns")
        })
        .collect();

    let client_hs: Vec<_> = (0..traders as u64)
        .map(|c| {
            let mut client = Client::new(
                ClientId(c),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(OrderFlow { trader: c, tick: 0 }),
            );
            client.max_ops = Some(orders_each);
            try_spawn_node(Box::new(client), Addr::Client(ClientId(c)), book.clone())
                .expect("client spawns")
        })
        .collect();

    std::thread::sleep(Duration::from_secs(4));

    let mut orders = 0u64;
    let mut fills = 0u64;
    for h in client_hs {
        let node = h.try_shutdown().expect("node joins");
        let client = node.as_any().downcast_ref::<Client>().expect("client");
        orders += client.completed.len() as u64;
        for op in &client.completed {
            if let Ok(fs) = bincode::deserialize::<Vec<Fill>>(&op.result) {
                fills += fs.len() as u64;
            }
        }
    }
    println!(
        "orders committed: {orders}/{}",
        orders_each * traders as u64
    );
    println!("fills returned to takers: {fills}");

    // Every replica's engine must agree exactly.
    let mut states = Vec::new();
    for h in replica_hs {
        let node = h.try_shutdown().expect("node joins");
        let replica = node.as_any().downcast_ref::<Replica>().expect("replica");
        let engine = replica.app().as_any_ref().downcast_ref::<MatchingEngine>();
        if let Some(e) = engine {
            states.push((e.trades, e.volume, e.next_order_id));
            println!(
                "{}: trades {}, volume {}, resting orders {}",
                replica.id(),
                e.trades,
                e.volume,
                e.bids.values().map(Vec::len).sum::<usize>()
                    + e.asks.values().map(Vec::len).sum::<usize>()
            );
        }
    }
    seq_h.try_shutdown().expect("sequencer joins");
    config_h.try_shutdown().expect("config service joins");
    assert!(states.windows(2).all(|w| w[0] == w[1]), "books diverged!");
    assert_eq!(orders, orders_each * traders as u64);
    println!("ok — all replica order books identical");
}
