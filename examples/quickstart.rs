//! Quickstart: a live NeoBFT deployment on localhost UDP.
//!
//! Spawns the configuration service, a software aom sequencer, four
//! replicas (f = 1), and one closed-loop client — each on its own
//! thread with a real UDP socket — then commits 200 echo operations and
//! prints the observed latencies.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use neobft::aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{EchoApp, EchoWorkload};
use neobft::core::{Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::runtime::{spawn_node, AddressBook};
use neobft::wire::{Addr, ClientId, GroupId, ReplicaId};
use std::time::Duration;

fn main() {
    let group = GroupId(0);
    let n = 4;
    let f = 1;
    let ops = 200u64;
    let keys = SystemKeys::new(2024, n, 1);
    let cfg = NeoConfig::new(f);
    let book = AddressBook::localhost(n, 1, group, 45000);

    println!("neobft quickstart — 4 replicas, 1 sequencer, 1 client on 127.0.0.1");

    // Configuration service.
    let mut config = ConfigService::new();
    config.register_group(group, (0..n as u32).map(ReplicaId).collect(), f);
    let config_h = spawn_node(Box::new(config), Addr::Config, book.clone());

    // Software sequencer (the paper's §6.3 deployment flavour).
    let sequencer = SequencerNode::new(
        group,
        (0..n as u32).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = spawn_node(Box::new(sequencer), Addr::Sequencer(group), book.clone());

    // Replicas.
    let replica_hs: Vec<_> = (0..n as u32)
        .map(|r| {
            let replica = Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(EchoApp::new()),
            );
            spawn_node(Box::new(replica), Addr::Replica(ReplicaId(r)), book.clone())
        })
        .collect();

    // One closed-loop client issuing 64-byte echo requests.
    let mut client = Client::new(
        ClientId(0),
        cfg,
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(64, 1)),
    );
    client.max_ops = Some(ops);
    let client_h = spawn_node(Box::new(client), Addr::Client(ClientId(0)), book);

    // Give the run a moment (200 ops at sub-ms latency completes fast).
    std::thread::sleep(Duration::from_secs(3));

    let client_node = client_h.shutdown();
    let client = client_node
        .as_any()
        .downcast_ref::<Client>()
        .expect("client node");
    let done = client.completed.len();
    println!("committed {done}/{ops} operations");
    if done > 0 {
        let mut lats: Vec<u64> = client.completed.iter().map(|o| o.latency_ns()).collect();
        lats.sort_unstable();
        let us = |v: u64| v as f64 / 1e3;
        println!(
            "latency over UDP localhost: p50 {:.0}µs  p90 {:.0}µs  p99 {:.0}µs",
            us(lats[done / 2]),
            us(lats[done * 9 / 10]),
            us(lats[(done - 1).min(done * 99 / 100)]),
        );
        let retries: u32 = client.completed.iter().map(|o| o.retries).sum();
        println!("retries needed: {retries}");
    }

    for h in replica_hs {
        let node = h.shutdown();
        let replica = node.as_any().downcast_ref::<Replica>().expect("replica");
        println!(
            "{}: executed {} ops, log length {}, view {}",
            replica.id(),
            replica.stats.executed,
            replica.log_len(),
            replica.view()
        );
    }
    seq_h.shutdown();
    config_h.shutdown();
    assert_eq!(done as u64, ops, "all operations must commit");
    println!("ok");
}
