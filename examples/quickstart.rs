//! Quickstart: a live NeoBFT deployment on localhost UDP.
//!
//! Spawns the configuration service, a software aom sequencer, four
//! replicas (f = 1), and one closed-loop client — each on its own
//! thread with a real UDP socket — then commits 200 echo operations and
//! prints the observed latencies.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use neobft::aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{EchoApp, EchoWorkload};
use neobft::core::{Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::runtime::AddressBook;
use neobft::wire::{ClientId, GroupId, ReplicaId};
use std::time::Duration;

fn main() {
    let group = GroupId(0);
    let n = 4;
    let f = 1;
    let ops = 200u64;
    let keys = SystemKeys::new(2024, n, 1);
    let cfg = NeoConfig::new(f);
    let dep = AddressBook::builder()
        .replicas(n)
        .clients(1)
        .group(group)
        .base_port(45000)
        .build()
        .expect("deployment fits the port space");

    println!("neobft quickstart — 4 replicas, 1 sequencer, 1 client on 127.0.0.1");

    // Configuration service.
    let mut config = ConfigService::new();
    config.register_group(group, dep.replica_ids(), f);
    let config_h = dep
        .spawn(Box::new(config), dep.config_service())
        .expect("config service spawns");

    // Software sequencer (the paper's §6.3 deployment flavour).
    let sequencer = SequencerNode::new(
        group,
        dep.replica_ids(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = dep
        .spawn(Box::new(sequencer), dep.sequencer())
        .expect("sequencer spawns");

    // Replicas.
    let replica_hs: Vec<_> = (0..n)
        .map(|r| {
            let replica = Replica::new(
                ReplicaId(r as u32),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(EchoApp::new()),
            );
            dep.spawn(Box::new(replica), dep.replica(r))
                .expect("replica spawns")
        })
        .collect::<Vec<_>>();

    // One closed-loop client issuing 64-byte echo requests.
    let mut client = Client::new(
        ClientId(0),
        cfg,
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(64, 1)),
    );
    client.max_ops = Some(ops);
    let client_h = dep
        .spawn(Box::new(client), dep.client(0))
        .expect("client spawns");

    // Give the run a moment (200 ops at sub-ms latency completes fast).
    std::thread::sleep(Duration::from_secs(3));

    // The handle exposes the node's live metrics registry; snapshot it
    // before joining to show the per-phase view of the run.
    let client_metrics = client_h.metrics_snapshot();
    let client_node = client_h.try_shutdown().expect("client joins");
    let client = client_node
        .as_any()
        .downcast_ref::<Client>()
        .expect("client node");
    let done = client.completed.len();
    println!("committed {done}/{ops} operations");
    if done > 0 {
        let mut lats: Vec<u64> = client.completed.iter().map(|o| o.latency_ns()).collect();
        lats.sort_unstable();
        let us = |v: u64| v as f64 / 1e3;
        println!(
            "latency over UDP localhost: p50 {:.0}µs  p90 {:.0}µs  p99 {:.0}µs",
            us(lats[done / 2]),
            us(lats[done * 9 / 10]),
            us(lats[(done - 1).min(done * 99 / 100)]),
        );
        let retries: u32 = client.completed.iter().map(|o| o.retries).sum();
        println!("retries needed: {retries}");
    }

    if let Some(lat) = client_metrics.histograms.get("client.latency_ns") {
        println!(
            "metrics registry agrees: {} ops, p50 {:.0}µs p99 {:.0}µs",
            lat.count,
            lat.p50 as f64 / 1e3,
            lat.p99 as f64 / 1e3,
        );
    }

    for h in replica_hs {
        let node = h.try_shutdown().expect("replica joins");
        let replica = node.as_any().downcast_ref::<Replica>().expect("replica");
        println!(
            "{}: executed {} ops, log length {}, view {}",
            replica.id(),
            replica.stats.executed,
            replica.log_len(),
            replica.view()
        );
    }
    seq_h.try_shutdown().expect("sequencer joins");
    config_h.try_shutdown().expect("config service joins");
    assert_eq!(done as u64, ops, "all operations must commit");
    println!("ok");
}
