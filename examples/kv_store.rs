//! A replicated key-value store under YCSB load (the §6.5 application),
//! running live over localhost UDP with three concurrent clients.
//!
//! ```bash
//! cargo run --release --example kv_store
//! ```

use neobft::aom::{AuthMode, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{KvApp, KvOp, KvResult, YcsbConfig, YcsbGenerator};
use neobft::core::{Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::runtime::{try_spawn_node, AddressBook};
use neobft::wire::{Addr, ClientId, GroupId, ReplicaId};
use std::time::Duration;

fn main() {
    let group = GroupId(0);
    let n = 4;
    let clients = 3usize;
    let ops_each = 300u64;
    let records = 10_000;
    let keys = SystemKeys::new(7, n, clients);
    let cfg = NeoConfig::new(1);
    let book = AddressBook::localhost(n, clients, group, 45100);
    let ycsb = YcsbConfig {
        record_count: records,
        ..YcsbConfig::WORKLOAD_A
    };

    println!("replicated B-Tree KV store — YCSB-A, {records} records, {clients} clients");

    let mut config = ConfigService::new();
    config.register_group(group, (0..n as u32).map(ReplicaId).collect(), 1);
    let config_h = try_spawn_node(Box::new(config), Addr::Config, book.clone())
        .expect("config service spawns");

    let sequencer = SequencerNode::new(
        group,
        (0..n as u32).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let seq_h = try_spawn_node(Box::new(sequencer), Addr::Sequencer(group), book.clone())
        .expect("sequencer spawns");

    let replica_hs: Vec<_> = (0..n as u32)
        .map(|r| {
            let replica = Replica::new(
                ReplicaId(r),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(KvApp::loaded(records, 128)),
            );
            try_spawn_node(Box::new(replica), Addr::Replica(ReplicaId(r)), book.clone())
                .expect("replica spawns")
        })
        .collect();

    let start = std::time::Instant::now();
    let client_hs: Vec<_> = (0..clients as u64)
        .map(|c| {
            let mut client = Client::new(
                ClientId(c),
                cfg.clone(),
                &keys,
                CostModel::FREE,
                Box::new(YcsbGenerator::new(ycsb, c + 1)),
            );
            client.max_ops = Some(ops_each);
            try_spawn_node(Box::new(client), Addr::Client(ClientId(c)), book.clone())
                .expect("client spawns")
        })
        .collect();

    std::thread::sleep(Duration::from_secs(4));
    let elapsed = start.elapsed();

    let mut total = 0u64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    for h in client_hs {
        let node = h.try_shutdown().expect("node joins");
        let client = node.as_any().downcast_ref::<Client>().expect("client");
        total += client.completed.len() as u64;
        for op in &client.completed {
            match KvResult::from_bytes(&op.result) {
                Some(KvResult::Value(_)) => reads += 1,
                Some(KvResult::Ok) => writes += 1,
                _ => {}
            }
        }
    }
    println!(
        "committed {total}/{} YCSB transactions in {elapsed:.2?} ({reads} reads / {writes} updates)",
        ops_each * clients as u64
    );

    // Every replica converged to the same store contents: issue one more
    // deterministic probe through a fresh client against a single key.
    for h in replica_hs {
        let node = h.try_shutdown().expect("node joins");
        let replica = node.as_any().downcast_ref::<Replica>().expect("replica");
        println!(
            "{}: executed {}, log {}",
            replica.id(),
            replica.stats.executed,
            replica.log_len()
        );
    }
    seq_h.try_shutdown().expect("sequencer joins");
    config_h.try_shutdown().expect("config service joins");
    assert_eq!(total, ops_each * clients as u64);
    let _ = KvOp::Get {
        key: "user0".into(),
    };
    println!("ok");
}
