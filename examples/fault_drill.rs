//! Fault drill: NeoBFT under fire, in the deterministic simulator.
//!
//! Walks through the paper's failure scenarios one at a time and shows
//! the protocol machinery that handles each:
//!
//! 1. a silent Byzantine replica (fast path unaffected, §6.2);
//! 2. network packet drops (query recovery + gap agreement, §5.4);
//! 3. a crashed leader during gap agreement (view change, §5.5);
//! 4. an equivocating sequencer under the Byzantine-network model
//!    (confirm quorums starve → failover to a new epoch, §4.2);
//! 5. a crashed sequencer (unicast watchdog → failover, §6.4).
//!
//! ```bash
//! cargo run --release --example fault_drill
//! ```

use neobft::aom::{AuthMode, Behavior, ConfigService, SequencerHw, SequencerNode};
use neobft::app::{EchoApp, EchoWorkload};
use neobft::core::replica::ReplicaBehavior;
use neobft::core::{Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::sim::{CpuConfig, FaultPlan, NetConfig, SimConfig, Simulator, MILLIS, SECS};
use neobft::wire::{Addr, ClientId, GroupId, ReplicaId};

const GROUP: GroupId = GroupId(0);
const N: usize = 4;

fn build(cfg: &NeoConfig, ops: u64, drop_rate: f64) -> Simulator {
    let keys = SystemKeys::new(1234, N, 1);
    let mut sim = Simulator::new(SimConfig {
        net: NetConfig::DATACENTER.with_drop_rate(drop_rate),
        default_cpu: CpuConfig::IDEAL,
        seed: 9,
        faults: FaultPlan::none(),
    });
    let mut config = ConfigService::new();
    config.register_group(GROUP, (0..N as u32).map(ReplicaId).collect(), 1);
    sim.add_node(Addr::Config, Box::new(config));
    let sequencer = SequencerNode::new(
        GROUP,
        (0..N as u32).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    sim.add_node(Addr::Sequencer(GROUP), Box::new(sequencer));
    for r in 0..N as u32 {
        let replica = Replica::new(
            ReplicaId(r),
            cfg.clone(),
            &keys,
            CostModel::FREE,
            Box::new(EchoApp::new()),
        );
        sim.add_node(Addr::Replica(ReplicaId(r)), Box::new(replica));
    }
    let mut client = Client::new(
        ClientId(0),
        cfg.clone(),
        &keys,
        CostModel::FREE,
        Box::new(EchoWorkload::new(64, 1)),
    );
    client.max_ops = Some(ops);
    sim.add_node(Addr::Client(ClientId(0)), Box::new(client));
    sim
}

fn completed(sim: &Simulator) -> usize {
    sim.node_ref::<Client>(Addr::Client(ClientId(0)))
        .expect("client")
        .completed
        .len()
}

fn replica<'a>(sim: &'a Simulator, r: u32) -> &'a Replica {
    sim.node_ref::<Replica>(Addr::Replica(ReplicaId(r)))
        .expect("replica")
}

fn main() {
    let cfg = NeoConfig::new(1);

    println!("— drill 1: silent Byzantine replica —");
    {
        let mut sim = build(&cfg, 20, 0.0);
        sim.node_mut::<Replica>(Addr::Replica(ReplicaId(3)))
            .expect("replica")
            .behavior = ReplicaBehavior::Mute;
        sim.run_until(SECS);
        println!(
            "  committed {}/20 with replica 3 mute; retries: {}",
            completed(&sim),
            sim.node_ref::<Client>(Addr::Client(ClientId(0)))
                .unwrap()
                .completed
                .iter()
                .map(|o| o.retries)
                .sum::<u32>()
        );
        assert_eq!(completed(&sim), 20);
    }

    println!("— drill 2: 2% packet loss —");
    {
        let mut sim = build(&cfg, 20, 0.02);
        sim.run_until(20 * SECS);
        let recovered: u64 = (0..4).map(|r| replica(&sim, r).stats.gaps_recovered).sum();
        let noops: u64 = (0..4).map(|r| replica(&sim, r).stats.noops_committed).sum();
        println!(
            "  committed {}/20; certificates recovered from peers: {recovered}, no-ops committed: {noops}",
            completed(&sim)
        );
        assert_eq!(completed(&sim), 20);
    }

    println!("— drill 3: leader crash during gap agreement —");
    {
        let mut sim = build(&cfg, 12, 0.0);
        sim.node_mut::<SequencerNode>(Addr::Sequencer(GROUP))
            .expect("sequencer")
            .set_behavior(Behavior::DropEvery(5));
        *sim.faults_mut() = FaultPlan::none().crash(Addr::Replica(ReplicaId(0)), MILLIS);
        sim.run_until(30 * SECS);
        let views: Vec<String> = (1..4)
            .map(|r| replica(&sim, r).view().to_string())
            .collect();
        println!(
            "  committed {}/12 after leader crash; surviving views: {views:?}",
            completed(&sim)
        );
        assert_eq!(completed(&sim), 12);
        assert!(replica(&sim, 1).stats.view_changes > 0);
    }

    println!("— drill 4: equivocating sequencer (Byzantine network model) —");
    {
        let byz = cfg.clone().with_byzantine_network();
        let keys_probe = (); // two clients give the equivocator real pairs
        let _ = keys_probe;
        let mut sim = build(&byz, 5, 0.0);
        // Add a second client so consecutive messages differ.
        let keys = SystemKeys::new(1234, N, 2);
        let mut client2 = Client::new(
            ClientId(1),
            byz.clone(),
            &keys,
            CostModel::FREE,
            Box::new(EchoWorkload::new(64, 2)),
        );
        client2.max_ops = Some(5);
        sim.add_node(Addr::Client(ClientId(1)), Box::new(client2));
        sim.node_mut::<SequencerNode>(Addr::Sequencer(GROUP))
            .expect("sequencer")
            .set_behavior(Behavior::Equivocate);
        sim.run_until(30 * SECS);
        let epoch = replica(&sim, 1).view().epoch;
        println!(
            "  committed {}/5 (client 0) after failover; epoch now {epoch}",
            completed(&sim)
        );
        assert!(epoch.0 >= 1, "failover must advance the epoch");
    }

    println!("— drill 5: crashed sequencer switch —");
    {
        let mut sim = build(&cfg, 5, 0.0);
        sim.node_mut::<SequencerNode>(Addr::Sequencer(GROUP))
            .expect("sequencer")
            .set_behavior(Behavior::Mute);
        sim.run_until(10 * SECS);
        let last = sim
            .node_ref::<Client>(Addr::Client(ClientId(0)))
            .unwrap()
            .completed
            .last()
            .map(|o| o.completed_at / MILLIS)
            .unwrap_or(0);
        println!(
            "  committed {}/5; last commit at t = {last} ms (detection + reconfiguration + view change)",
            completed(&sim)
        );
        assert_eq!(completed(&sim), 5);
    }

    println!("all drills passed");
}
