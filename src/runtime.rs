//! Real transport: the same sans-IO nodes that run under the simulator,
//! driven by tokio over UDP sockets.
//!
//! Each node gets its own OS thread running a single-threaded tokio
//! runtime (so nodes never migrate threads and need no internal
//! locking, mirroring the paper's one-dispatch-thread replica design).
//! An [`AddressBook`] maps logical [`Addr`]esses to socket addresses;
//! `Addr::Multicast(g)` maps to the group's sequencer socket, exactly
//! like the BGP-advertised group address of §4.1.

use neo_sim::{Context, Node, TimerId};
use neo_wire::{Addr, ClientId, GroupId, ReplicaId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::net::UdpSocket;

/// Logical address ↔ socket address mapping for a deployment.
#[derive(Clone, Debug, Default)]
pub struct AddressBook {
    forward: HashMap<Addr, SocketAddr>,
    reverse: HashMap<SocketAddr, Addr>,
}

impl AddressBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a node.
    pub fn insert(&mut self, addr: Addr, sock: SocketAddr) {
        self.forward.insert(addr, sock);
        self.reverse.insert(sock, addr);
    }

    /// A localhost deployment: `n` replicas, `clients` clients, one
    /// sequencer and the config service, on consecutive ports starting
    /// at `base_port`.
    pub fn localhost(n: usize, clients: usize, group: GroupId, base_port: u16) -> Self {
        let mut book = Self::new();
        let mut port = base_port;
        let mut next = |a: Addr, book: &mut Self| {
            book.insert(a, SocketAddr::from(([127, 0, 0, 1], port)));
            port += 1;
        };
        for r in 0..n as u32 {
            next(Addr::Replica(ReplicaId(r)), &mut book);
        }
        for c in 0..clients as u64 {
            next(Addr::Client(ClientId(c)), &mut book);
        }
        next(Addr::Sequencer(group), &mut book);
        next(Addr::Config, &mut book);
        // The multicast group address routes to the sequencer (§3.2).
        let seq = book.forward[&Addr::Sequencer(group)];
        book.forward.insert(Addr::Multicast(group), seq);
        book
    }

    /// Socket address of a logical node.
    pub fn lookup(&self, addr: Addr) -> Option<SocketAddr> {
        self.forward.get(&addr).copied()
    }

    /// Logical address of a socket.
    pub fn resolve(&self, sock: SocketAddr) -> Option<Addr> {
        self.reverse.get(&sock).copied()
    }
}

/// Handle to a spawned node; dropping does not stop it — call
/// [`NodeHandle::shutdown`].
pub struct NodeHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<Box<dyn Node>>>,
    /// The node's logical address.
    pub addr: Addr,
}

impl NodeHandle {
    /// Signal the node loop to stop and wait for it, returning the node
    /// (so callers can inspect final state, e.g. client completions).
    pub fn shutdown(mut self) -> Box<dyn Node> {
        self.stop.store(true, Ordering::SeqCst);
        self.join
            .take()
            .expect("not yet joined")
            .join()
            .expect("node thread panicked")
    }
}

struct RtCtx {
    start: Instant,
    me: Addr,
    sends: Vec<(Addr, Vec<u8>, u64)>,
    timers: Vec<(u64, u32, TimerId)>,
    cancels: Vec<TimerId>,
    next_timer: u64,
}

impl Context for RtCtx {
    fn now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
    fn me(&self) -> Addr {
        self.me
    }
    fn send_after(&mut self, to: Addr, payload: Vec<u8>, extra_delay: u64) {
        self.sends.push((to, payload, extra_delay));
    }
    fn set_timer(&mut self, delay: u64, kind: u32) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.timers.push((delay, kind, id));
        id
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.cancels.push(timer);
    }
    fn charge(&mut self, _ns: u64) {
        // Real time: work costs what it costs.
    }
}

/// Spawn `node` under `me`, bound to its socket from the book.
///
/// # Panics
/// Panics if `me` is not in the book or the socket cannot be bound.
pub fn spawn_node(node: Box<dyn Node>, me: Addr, book: AddressBook) -> NodeHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let join = std::thread::Builder::new()
        .name(format!("{me}"))
        .spawn(move || run_node(node, me, book, stop2))
        .expect("spawn node thread");
    NodeHandle {
        stop,
        join: Some(join),
        addr: me,
    }
}

fn run_node(
    mut node: Box<dyn Node>,
    me: Addr,
    book: AddressBook,
    stop: Arc<AtomicBool>,
) -> Box<dyn Node> {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    rt.block_on(async move {
        let bind = book.lookup(me).expect("address registered");
        let sock = UdpSocket::bind(bind).await.expect("bind");
        let start = Instant::now();
        let mut next_timer_id: u64 = 1;
        // (deadline_ns, seq, timer_id, kind); seq breaks ties FIFO.
        let mut timers: BinaryHeap<Reverse<(u64, u64, u64, u32)>> = BinaryHeap::new();
        let mut timer_seq = 0u64;
        let mut cancelled: HashSet<TimerId> = HashSet::new();
        // Delayed sends (send_after with a positive delay):
        // (due_ns, tiebreak, destination, payload).
        type DelayedSend = (u64, u64, Addr, Vec<u8>);
        let mut delayed: BinaryHeap<Reverse<DelayedSend>> = BinaryHeap::new();
        let mut buf = vec![0u8; 65_536];

        // Bootstrap timer, mirroring the simulator convention.
        timers.push(Reverse((0, 0, 0, neo_sim::sim::INIT_TIMER_KIND)));

        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let now_ns = start.elapsed().as_nanos() as u64;
            // Earliest pending deadline across timers and delayed sends.
            let next_deadline = [
                timers.peek().map(|Reverse((d, ..))| *d),
                delayed.peek().map(|Reverse((d, ..))| *d),
            ]
            .into_iter()
            .flatten()
            .min();

            let mut fired: Option<(TimerId, u32)> = None;
            let mut due_send: Option<(Addr, Vec<u8>)> = None;
            let mut received: Option<(Addr, usize)> = None;

            if let Some(d) = next_deadline.filter(|d| *d <= now_ns) {
                // Something is due right now.
                let timer_due = timers.peek().map(|Reverse((t, ..))| *t == d).unwrap_or(false)
                    && timers.peek().map(|Reverse((t, ..))| *t).unwrap_or(u64::MAX)
                        <= delayed.peek().map(|Reverse((t, ..))| *t).unwrap_or(u64::MAX);
                if timer_due {
                    let Reverse((_, _, id, kind)) = timers.pop().expect("peeked");
                    if !cancelled.remove(&TimerId(id)) {
                        fired = Some((TimerId(id), kind));
                    }
                } else {
                    let Reverse((_, _, to, payload)) = delayed.pop().expect("peeked");
                    due_send = Some((to, payload));
                }
            } else {
                // Wait for a packet or the next deadline (or a stop poll).
                let wait = next_deadline
                    .map(|d| Duration::from_nanos(d.saturating_sub(now_ns)))
                    .unwrap_or(Duration::from_millis(50))
                    .min(Duration::from_millis(50));
                tokio::select! {
                    r = sock.recv_from(&mut buf) => {
                        if let Ok((len, src)) = r {
                            if let Some(from) = book.resolve(src) {
                                received = Some((from, len));
                            }
                        }
                    }
                    _ = tokio::time::sleep(wait) => {}
                }
            }

            if let Some((to, payload)) = due_send {
                if let Some(dst) = book.lookup(to) {
                    let _ = sock.send_to(&payload, dst).await;
                }
                continue;
            }

            let mut ctx = RtCtx {
                start,
                me,
                sends: Vec::new(),
                timers: Vec::new(),
                cancels: Vec::new(),
                next_timer: next_timer_id,
            };
            match (fired, received) {
                (Some((id, kind)), _) => node.on_timer(id, kind, &mut ctx),
                (_, Some((from, len))) => node.on_message(from, &buf[..len], &mut ctx),
                _ => continue,
            }
            next_timer_id = ctx.next_timer;
            let now_ns = start.elapsed().as_nanos() as u64;
            for id in ctx.cancels {
                cancelled.insert(id);
            }
            for (delay, kind, id) in ctx.timers {
                timer_seq += 1;
                timers.push(Reverse((now_ns + delay, timer_seq, id.0, kind)));
            }
            for (to, payload, extra) in ctx.sends {
                if extra == 0 {
                    if let Some(dst) = book.lookup(to) {
                        let _ = sock.send_to(&payload, dst).await;
                    }
                } else {
                    timer_seq += 1;
                    delayed.push(Reverse((now_ns + extra, timer_seq, to, payload)));
                }
            }
        }
        node
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_book_localhost_layout() {
        let book = AddressBook::localhost(4, 2, GroupId(0), 47000);
        assert_eq!(
            book.lookup(Addr::Replica(ReplicaId(0))),
            Some(SocketAddr::from(([127, 0, 0, 1], 47000)))
        );
        assert_eq!(
            book.lookup(Addr::Client(ClientId(1))),
            Some(SocketAddr::from(([127, 0, 0, 1], 47005)))
        );
        // Multicast resolves to the sequencer socket.
        assert_eq!(
            book.lookup(Addr::Multicast(GroupId(0))),
            book.lookup(Addr::Sequencer(GroupId(0)))
        );
        // Reverse resolution names the sequencer (registered first).
        let seq_sock = book.lookup(Addr::Sequencer(GroupId(0))).unwrap();
        assert_eq!(book.resolve(seq_sock), Some(Addr::Sequencer(GroupId(0))));
    }
}
