//! Real transport: the same sans-IO nodes that run under the simulator,
//! driven by tokio over UDP sockets.
//!
//! Each node gets its own OS thread running a single-threaded tokio
//! runtime (so nodes never migrate threads and need no internal
//! locking, mirroring the paper's one-dispatch-thread replica design).
//! An [`AddressBook`] maps logical [`Addr`]esses to socket addresses;
//! `Addr::Multicast(g)` maps to the group's sequencer socket, exactly
//! like the BGP-advertised group address of §4.1.
//!
//! Deployments are described with [`AddressBook::builder`], which lays
//! out a cluster without hand-rolled port arithmetic, and nodes are
//! spawned with the fallible [`try_spawn_node`] — lookup and bind
//! failures come back as a [`RuntimeError`] instead of a panic.
//!
//! The node loop is *batched*: each wakeup drains every due timer and
//! delayed send and every ready packet into one reused [`RtCtx`] (its
//! effect buffers are cleared between events, never reallocated), then
//! flushes the node's durable store (one batched fsync, timed into
//! `store.fsync_ns` — the write-ahead log is durable before any reply
//! from the batch leaves the socket) and finally the coalesced outgoing
//! sends in one pass. Payloads are
//! [`neo_wire::Payload`]s end to end, so a broadcast that fans out to
//! the whole group costs one encode regardless of group size. Batch
//! sizes and send failures are recorded in the node's metrics registry
//! (`runtime.batch_events`; `runtime_send_failed` totals across all
//! destinations, `runtime.send_failed.<addr>` counts per destination so
//! a single unreachable peer is attributable from the counters alone —
//! bounded at `SEND_FAIL_LABEL_CAP` distinct destinations, with the
//! overflow sharing `runtime.send_failed.other`).
//!
//! Observability: spawn with [`try_spawn_node_with_obs`] and
//! [`ObsConfig::flight_recorder`] to keep per-node event/packet rings
//! ([`NodeHandle::flight`] freezes them into a dump), and attach an
//! [`ObsExporter`] to stream periodic [`ObsStreamLine`] JSONL. For live
//! scraping, build a [`RuntimeTelemetry`] provider over the deployment's
//! handles and serve it with a
//! [`TelemetryServer`](neo_sim::telemetry::TelemetryServer): `/metrics`
//! snapshots each registry at request time, `/health` reads the
//! [`HealthReport`] each node loop publishes every `HEALTH_REFRESH`.

use neo_sim::obs::{
    EventKind, HealthReport, Metrics, MetricsSnapshot, NodeFlight, ObsConfig, ObsStreamLine,
};
use neo_sim::telemetry::TelemetryProvider;
use neo_sim::{Context, Node, TimerId};
use neo_wire::{Addr, ClientId, GroupId, Payload, ReplicaId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::{IpAddr, SocketAddr};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tokio::net::UdpSocket;

/// Errors surfaced by the deployment and spawn APIs.
#[derive(Debug, thiserror::Error)]
pub enum RuntimeError {
    /// The logical address is not registered in the [`AddressBook`].
    #[error("no socket address registered for {0}")]
    UnknownAddress(Addr),
    /// The node's UDP socket could not be bound or configured.
    #[error("failed to bind UDP socket for {addr}")]
    Bind {
        addr: Addr,
        #[source]
        source: std::io::Error,
    },
    /// The per-node OS thread could not be spawned.
    #[error("failed to spawn node thread")]
    Spawn(#[source] std::io::Error),
    /// The node's thread panicked before or during shutdown.
    #[error("node thread for {0} panicked")]
    NodePanicked(Addr),
    /// A verify-pool worker panicked. The node loop stops as soon as it
    /// notices (the pool keeps absorbing submissions inline so nothing
    /// hangs), and the poisoning surfaces here instead of as a wedged
    /// deployment.
    #[error("verify pool for {0} was poisoned by a panicked worker")]
    VerifyPoolPoisoned(Addr),
    /// The handle was already shut down.
    #[error("node {0} already shut down")]
    AlreadyJoined(Addr),
    /// The deployment does not fit in the port range above `base_port`.
    #[error(
        "deployment needs {needed} ports but only {available} are available above {base_port}"
    )]
    PortSpace {
        base_port: u16,
        needed: usize,
        available: usize,
    },
}

/// Logical address ↔ socket address mapping for a deployment.
#[derive(Clone, Debug, Default)]
pub struct AddressBook {
    forward: HashMap<Addr, SocketAddr>,
    reverse: HashMap<SocketAddr, Addr>,
}

impl AddressBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Describe a deployment without hand-rolling port arithmetic:
    /// `AddressBook::builder().replicas(4).clients(2).build()?`.
    pub fn builder() -> DeploymentBuilder {
        DeploymentBuilder::default()
    }

    /// Register a node.
    pub fn insert(&mut self, addr: Addr, sock: SocketAddr) {
        self.forward.insert(addr, sock);
        self.reverse.insert(sock, addr);
    }

    /// A localhost deployment: `n` replicas, `clients` clients, one
    /// sequencer and the config service, on consecutive ports starting
    /// at `base_port`.
    pub fn localhost(n: usize, clients: usize, group: GroupId, base_port: u16) -> Self {
        Self::builder()
            .replicas(n)
            .clients(clients)
            .group(group)
            .base_port(base_port)
            .build()
            .expect("deployment fits the port space")
            .into_book()
    }

    /// Socket address of a logical node.
    pub fn lookup(&self, addr: Addr) -> Option<SocketAddr> {
        self.forward.get(&addr).copied()
    }

    /// Logical address of a socket.
    pub fn resolve(&self, sock: SocketAddr) -> Option<Addr> {
        self.reverse.get(&sock).copied()
    }
}

/// Builder for a [`Deployment`]: replicas, clients, one sequencer, and
/// the config service on consecutive ports.
#[derive(Clone, Debug)]
pub struct DeploymentBuilder {
    replicas: usize,
    clients: usize,
    group: GroupId,
    base_port: u16,
    host: IpAddr,
}

impl Default for DeploymentBuilder {
    fn default() -> Self {
        DeploymentBuilder {
            replicas: 4,
            clients: 1,
            group: GroupId(0),
            base_port: 47000,
            host: IpAddr::from([127, 0, 0, 1]),
        }
    }
}

impl DeploymentBuilder {
    /// Number of replicas (default 4, the paper's f = 1 group).
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Number of client processes (default 1).
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// The aom group id (default 0).
    pub fn group(mut self, group: GroupId) -> Self {
        self.group = group;
        self
    }

    /// First port of the consecutive range (default 47000).
    pub fn base_port(mut self, port: u16) -> Self {
        self.base_port = port;
        self
    }

    /// Host every node binds on (default 127.0.0.1).
    pub fn host(mut self, host: IpAddr) -> Self {
        self.host = host;
        self
    }

    /// Lay out the address book. Fails with [`RuntimeError::PortSpace`]
    /// if the cluster does not fit above `base_port`.
    pub fn build(self) -> Result<Deployment, RuntimeError> {
        let needed = self.replicas + self.clients + 2;
        let available = usize::from(u16::MAX - self.base_port) + 1;
        if needed > available {
            return Err(RuntimeError::PortSpace {
                base_port: self.base_port,
                needed,
                available,
            });
        }
        let mut book = AddressBook::new();
        let mut port = self.base_port;
        let mut next = |a: Addr, book: &mut AddressBook| {
            book.insert(a, SocketAddr::new(self.host, port));
            port += 1;
        };
        for r in 0..self.replicas as u32 {
            next(Addr::Replica(ReplicaId(r)), &mut book);
        }
        for c in 0..self.clients as u64 {
            next(Addr::Client(ClientId(c)), &mut book);
        }
        next(Addr::Sequencer(self.group), &mut book);
        next(Addr::Config, &mut book);
        // The multicast group address routes to the sequencer (§3.2).
        let seq = book.forward[&Addr::Sequencer(self.group)];
        book.forward.insert(Addr::Multicast(self.group), seq);
        Ok(Deployment {
            book,
            group: self.group,
            replicas: self.replicas,
            clients: self.clients,
        })
    }
}

/// A laid-out deployment: the address book plus the logical roster, with
/// helpers for naming nodes and spawning them.
#[derive(Clone, Debug)]
pub struct Deployment {
    book: AddressBook,
    group: GroupId,
    replicas: usize,
    clients: usize,
}

impl Deployment {
    /// The address book (cloned into each spawned node).
    pub fn book(&self) -> &AddressBook {
        &self.book
    }

    /// Consume the deployment, keeping only the book.
    pub fn into_book(self) -> AddressBook {
        self.book
    }

    /// Number of replicas in the roster.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of clients in the roster.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// The aom group id.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// All replica ids, in order (the membership list protocol nodes are
    /// configured with).
    pub fn replica_ids(&self) -> Vec<ReplicaId> {
        (0..self.replicas as u32).map(ReplicaId).collect()
    }

    /// Logical address of replica `i`.
    pub fn replica(&self, i: usize) -> Addr {
        Addr::Replica(ReplicaId(i as u32))
    }

    /// Logical address of client `i`.
    pub fn client(&self, i: usize) -> Addr {
        Addr::Client(ClientId(i as u64))
    }

    /// Logical address of the group's sequencer.
    pub fn sequencer(&self) -> Addr {
        Addr::Sequencer(self.group)
    }

    /// Logical address of the configuration service.
    pub fn config_service(&self) -> Addr {
        Addr::Config
    }

    /// Spawn `node` under `addr` with this deployment's book.
    pub fn spawn(&self, node: Box<dyn Node>, addr: Addr) -> Result<NodeHandle, RuntimeError> {
        try_spawn_node(node, addr, self.book.clone())
    }
}

/// Handle to a spawned node; dropping does not stop it — call
/// [`NodeHandle::try_shutdown`].
pub struct NodeHandle {
    stop: Arc<AtomicBool>,
    poisoned: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<Box<dyn Node>>>,
    metrics: Arc<Metrics>,
    health: Arc<Mutex<HealthReport>>,
    /// The node's logical address.
    pub addr: Addr,
}

impl NodeHandle {
    /// Signal the node loop to stop and wait for it, returning the node
    /// (so callers can inspect final state, e.g. client completions).
    /// A node whose verify pool was poisoned by a panicking worker joins
    /// cleanly but surfaces [`RuntimeError::VerifyPoolPoisoned`].
    pub fn try_shutdown(mut self) -> Result<Box<dyn Node>, RuntimeError> {
        self.stop.store(true, Ordering::SeqCst);
        let join = self
            .join
            .take()
            .ok_or(RuntimeError::AlreadyJoined(self.addr))?;
        let node = join
            .join()
            .map_err(|_| RuntimeError::NodePanicked(self.addr))?;
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(RuntimeError::VerifyPoolPoisoned(self.addr));
        }
        Ok(node)
    }

    /// Whether the node's verify pool has been poisoned (readable while
    /// the node runs — the loop stops itself shortly after this flips).
    pub fn verify_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// The node's live metrics registry (readable while the node runs).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Snapshot the node's metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Freeze this node's flight-recorder rings (recent events and
    /// packet digests) plus its metrics — readable while the node runs.
    pub fn flight(&self) -> NodeFlight {
        self.metrics.flight(self.addr)
    }

    /// This node's `(address, registry)` pair, for wiring into an
    /// [`ObsExporter`].
    pub fn obs_source(&self) -> (Addr, Arc<Metrics>) {
        (self.addr, self.metrics.clone())
    }

    /// The node loop's latest self-published health document (refreshed
    /// on a coarse cadence while the node runs).
    pub fn health_report(&self) -> HealthReport {
        match self.health.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }
}

/// A [`TelemetryProvider`] over spawned node handles: `/metrics` scrapes
/// snapshot each node's live registry at request time; `/health` reads
/// the health documents the node loops publish. Build one from the
/// deployment's handles and hand it to a
/// [`neo_sim::TelemetryServer`](neo_sim::telemetry::TelemetryServer).
#[derive(Default)]
pub struct RuntimeTelemetry {
    nodes: Vec<(String, Arc<Metrics>, Arc<Mutex<HealthReport>>)>,
}

impl RuntimeTelemetry {
    /// An empty provider; `add` each handle before starting the server.
    pub fn new() -> Self {
        RuntimeTelemetry::default()
    }

    /// Register `handle`'s registry and health slot. The provider stays
    /// valid after the handle shuts down (the final published state
    /// keeps being served).
    pub fn add(&mut self, handle: &NodeHandle) {
        self.nodes.push((
            handle.addr.to_string(),
            handle.metrics.clone(),
            handle.health.clone(),
        ));
    }

    /// Provider over every handle in `handles`.
    pub fn from_handles<'a>(handles: impl IntoIterator<Item = &'a NodeHandle>) -> Self {
        let mut t = RuntimeTelemetry::new();
        for h in handles {
            t.add(h);
        }
        t
    }
}

impl TelemetryProvider for RuntimeTelemetry {
    fn scrape(&self) -> Vec<(String, MetricsSnapshot)> {
        self.nodes
            .iter()
            .map(|(name, metrics, _)| (name.clone(), metrics.snapshot()))
            .collect()
    }

    fn health(&self) -> Vec<HealthReport> {
        self.nodes
            .iter()
            .map(|(_, _, health)| match health.lock() {
                Ok(g) => g.clone(),
                Err(p) => p.into_inner().clone(),
            })
            .collect()
    }
}

/// Live metrics exporter: a background thread that appends one
/// [`ObsStreamLine`] JSON line per node per period to a file. Each line
/// drains that node's trace ring, so the stream's lines concatenate
/// into a complete bounded-loss event log of the run.
pub struct ObsExporter {
    stop: std::sync::mpsc::Sender<()>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ObsExporter {
    /// Start exporting `nodes` to `path` (created or appended) every
    /// `period`. File-open errors surface here; later write errors stop
    /// the stream without disturbing the nodes.
    pub fn start(
        nodes: Vec<(Addr, Arc<Metrics>)>,
        path: &std::path::Path,
        period: Duration,
    ) -> std::io::Result<ObsExporter> {
        use std::io::Write;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let (stop, rx) = std::sync::mpsc::channel::<()>();
        let join = std::thread::Builder::new()
            .name("obs-exporter".into())
            .spawn(move || {
                let start = Instant::now();
                let mut w = std::io::BufWriter::new(file);
                loop {
                    // recv_timeout is the ticker *and* the stop signal:
                    // a stop request flushes one final snapshot batch
                    // instead of losing the tail.
                    let stopping = !matches!(
                        rx.recv_timeout(period),
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout)
                    );
                    let at = start.elapsed().as_nanos() as u64;
                    for (addr, metrics) in &nodes {
                        let line = ObsStreamLine {
                            at,
                            node: *addr,
                            snapshot: metrics.snapshot(),
                            events: metrics.take_trace(),
                        };
                        let ok = serde_json::to_writer(&mut w, &line).is_ok()
                            && w.write_all(b"\n").is_ok();
                        if !ok {
                            return;
                        }
                    }
                    let _ = w.flush();
                    if stopping {
                        return;
                    }
                }
            })?;
        Ok(ObsExporter {
            stop,
            join: Some(join),
        })
    }

    /// Stop the exporter after one final snapshot batch and wait for it.
    pub fn stop(mut self) {
        let _ = self.stop.send(());
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The executor-side [`Context`]: one instance lives for the whole node
/// loop and is reused across events — `clear_effects` empties the
/// buffers but keeps their allocations, so a steady-state node dispatches
/// without allocating effect storage.
struct RtCtx {
    start: Instant,
    me: Addr,
    sends: Vec<(Addr, Payload, u64)>,
    timers: Vec<(u64, u32, TimerId)>,
    cancels: Vec<TimerId>,
    next_timer: u64,
    metrics: Arc<Metrics>,
}

impl RtCtx {
    /// Drop accumulated effects, retaining buffer capacity for reuse.
    fn clear_effects(&mut self) {
        self.sends.clear();
        self.timers.clear();
        self.cancels.clear();
    }
}

impl Context for RtCtx {
    fn now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
    fn me(&self) -> Addr {
        self.me
    }
    fn send_after(&mut self, to: Addr, payload: Payload, extra_delay: u64) {
        self.sends.push((to, payload, extra_delay));
    }
    fn set_timer(&mut self, delay: u64, kind: u32) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.timers.push((delay, kind, id));
        id
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.cancels.push(timer);
    }
    fn charge(&mut self, _ns: u64) {
        // Real time: work costs what it costs.
    }
    fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

/// Spawn `node` under `me`, bound to its socket from the book, with
/// metrics on and the event trace off.
///
/// The socket is bound *before* the thread starts, so address-lookup and
/// bind failures surface here instead of panicking the node thread.
pub fn try_spawn_node(
    node: Box<dyn Node>,
    me: Addr,
    book: AddressBook,
) -> Result<NodeHandle, RuntimeError> {
    try_spawn_node_with_obs(node, me, book, ObsConfig::default())
}

/// [`try_spawn_node`] with explicit observability configuration.
pub fn try_spawn_node_with_obs(
    node: Box<dyn Node>,
    me: Addr,
    book: AddressBook,
    obs: ObsConfig,
) -> Result<NodeHandle, RuntimeError> {
    let bind = book.lookup(me).ok_or(RuntimeError::UnknownAddress(me))?;
    let sock = std::net::UdpSocket::bind(bind)
        .map_err(|source| RuntimeError::Bind { addr: me, source })?;
    sock.set_nonblocking(true)
        .map_err(|source| RuntimeError::Bind { addr: me, source })?;
    let metrics = Arc::new(Metrics::new(obs));
    let stop = Arc::new(AtomicBool::new(false));
    let poisoned = Arc::new(AtomicBool::new(false));
    let health = Arc::new(Mutex::new(HealthReport {
        node: me.to_string(),
        healthy: true,
        ..HealthReport::default()
    }));
    let stop2 = stop.clone();
    let poisoned2 = poisoned.clone();
    let metrics2 = metrics.clone();
    let health2 = health.clone();
    let join = std::thread::Builder::new()
        .name(format!("{me}"))
        .spawn(move || run_node(node, me, book, sock, stop2, poisoned2, metrics2, health2))
        .map_err(RuntimeError::Spawn)?;
    Ok(NodeHandle {
        stop,
        poisoned,
        join: Some(join),
        metrics,
        health,
        addr: me,
    })
}

/// Pending timers: `(deadline_ns, seq, timer_id, kind)`; seq breaks ties
/// FIFO.
type TimerHeap = BinaryHeap<Reverse<(u64, u64, u64, u32)>>;

/// Delayed sends (`send_after` with a positive delay):
/// `(due_ns, tiebreak, destination, payload)`.
type DelayedHeap = BinaryHeap<Reverse<(u64, u64, Addr, Payload)>>;

/// Move one event's effects out of the reused `ctx` into the loop's
/// queues: cancels into the tombstone set, new timers onto the timer
/// heap, immediate sends onto the coalesced `out` queue (flushed after
/// the batch), and delayed sends onto the delayed heap. Clears `ctx`'s
/// buffers keeping their capacity.
fn drain_effects(
    ctx: &mut RtCtx,
    timers: &mut TimerHeap,
    delayed: &mut DelayedHeap,
    cancelled: &mut HashSet<TimerId>,
    out: &mut Vec<(Addr, Payload)>,
    timer_seq: &mut u64,
) {
    let now_ns = ctx.start.elapsed().as_nanos() as u64;
    for id in ctx.cancels.drain(..) {
        cancelled.insert(id);
    }
    for (delay, kind, id) in ctx.timers.drain(..) {
        *timer_seq += 1;
        timers.push(Reverse((now_ns + delay, *timer_seq, id.0, kind)));
    }
    for (to, payload, extra) in ctx.sends.drain(..) {
        if extra == 0 {
            out.push((to, payload));
        } else {
            *timer_seq += 1;
            delayed.push(Reverse((now_ns + extra, *timer_seq, to, payload)));
        }
    }
    ctx.clear_effects();
}

/// How often the node loop refreshes its published [`HealthReport`]
/// (scrape cadence is seconds; the refresh snapshots the registry, so it
/// runs at a coarse cadence instead of per batch).
const HEALTH_REFRESH: Duration = Duration::from_millis(200);

/// Cardinality bound for `runtime.send_failed.<addr>`: the first few
/// failing destinations get their own per-destination counter; every
/// further destination shares `runtime.send_failed.other`, so the metric
/// family cannot grow with the address space a misconfigured book (or an
/// adversarial roster) names.
const SEND_FAIL_LABEL_CAP: usize = 8;

/// Refresh the shared health document from the node's current state.
fn publish_health(
    node: &dyn Node,
    me: Addr,
    metrics: &Metrics,
    verify_pool: Option<&Arc<neo_crypto::VerifyPool>>,
    verify_poisoned: bool,
    health: &Mutex<HealthReport>,
) {
    let snap = metrics.snapshot();
    let protocol = node.health();
    // Healthy = the verify stage is intact and the protocol layer (if it
    // reports one) is not mid-recovery.
    let healthy = !verify_poisoned
        && protocol
            .as_ref()
            .and_then(|p| p.recovery_phase.as_deref())
            .is_none_or(|phase| phase == "active");
    let report = HealthReport {
        node: me.to_string(),
        healthy,
        committed: snap.event(EventKind::Commit),
        verify_queue_depth: verify_pool.map_or(0, |p| p.queue_depth() as u64),
        verify_in_flight: verify_pool.map_or(0, |p| p.in_flight() as u64),
        verify_poisoned,
        fsync_p99_ns: snap.histograms.get("store.fsync_ns").map_or(0, |h| h.p99),
        protocol,
    };
    *match health.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    } = report;
}

#[allow(clippy::too_many_arguments)] // one shared slot per observability plane
fn run_node(
    mut node: Box<dyn Node>,
    me: Addr,
    book: AddressBook,
    sock: std::net::UdpSocket,
    stop: Arc<AtomicBool>,
    poisoned: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    health: Arc<Mutex<HealthReport>>,
) -> Box<dyn Node> {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    rt.block_on(async move {
        let sock = match UdpSocket::from_std(sock) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("node {me}: failed to register socket with tokio: {e}");
                return node;
            }
        };
        let start = Instant::now();
        let mut timers = TimerHeap::new();
        let mut timer_seq = 0u64;
        let mut cancelled: HashSet<TimerId> = HashSet::new();
        let mut delayed = DelayedHeap::new();
        // Reused receive buffer; payloads are copied out only when the
        // node keeps them (decode borrows `&buf[..len]`).
        let mut buf = vec![0u8; 65_536];
        // Coalesced outgoing sends, flushed once per batch.
        let mut out: Vec<(Addr, Payload)> = Vec::new();
        // Destinations whose send failures were already logged; failures
        // stay *counted* per packet in `runtime_send_failed`.
        let mut fail_logged: HashSet<Addr> = HashSet::new();
        // Destinations that own a `runtime.send_failed.<addr>` label
        // (bounded at SEND_FAIL_LABEL_CAP; the overflow shares one
        // `runtime.send_failed.other` counter).
        let mut fail_labeled: HashSet<Addr> = HashSet::new();
        // Last health publication (None = not yet published).
        let mut last_health: Option<Instant> = None;
        // One context for the node's lifetime; effect buffers are
        // cleared between events, never reallocated.
        let mut ctx = RtCtx {
            start,
            me,
            sends: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            next_timer: 1,
            metrics: metrics.clone(),
        };

        // Bootstrap timer, mirroring the simulator convention.
        timers.push(Reverse((0, 0, 0, neo_sim::sim::INIT_TIMER_KIND)));

        // Verify stage: if the node dispatches verification to a worker
        // pool, wire the pool's completion hook to a tokio wakeup so the
        // idle wait breaks as soon as a verdict is ready.
        let verify_pool = node.verify_pool();
        let verify_wake = Arc::new(tokio::sync::Notify::new());
        if let Some(pool) = &verify_pool {
            let wake = verify_wake.clone();
            pool.set_wake_hook(Arc::new(move || wake.notify_one()));
        }

        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            // A panicked verify worker poisons the pool: surface it as a
            // typed shutdown instead of processing with a broken stage.
            if let Some(pool) = &verify_pool {
                if pool.poisoned() {
                    poisoned.store(true, Ordering::SeqCst);
                    metrics.incr("runtime.verify_poisoned");
                    eprintln!("node {me}: verify pool poisoned by a panicked worker; stopping");
                    break;
                }
            }

            // Batch phase 1: drain every due timer and delayed send.
            // Timers win ties with delayed sends at the same deadline,
            // matching the simulator's ordering.
            let mut events = 0u64;
            loop {
                let now_ns = start.elapsed().as_nanos() as u64;
                let timer_at = timers.peek().map(|Reverse((d, ..))| *d).unwrap_or(u64::MAX);
                let send_at = delayed
                    .peek()
                    .map(|Reverse((d, ..))| *d)
                    .unwrap_or(u64::MAX);
                if timer_at <= now_ns && timer_at <= send_at {
                    let Reverse((_, _, id, kind)) = timers.pop().expect("peeked");
                    if !cancelled.remove(&TimerId(id)) {
                        node.on_timer(TimerId(id), kind, &mut ctx);
                        drain_effects(
                            &mut ctx,
                            &mut timers,
                            &mut delayed,
                            &mut cancelled,
                            &mut out,
                            &mut timer_seq,
                        );
                        events += 1;
                    }
                } else if send_at <= now_ns {
                    let Reverse((_, _, to, payload)) = delayed.pop().expect("peeked");
                    out.push((to, payload));
                } else {
                    break;
                }
            }

            // Batch phase 2: drain every ready packet without blocking.
            // Due timers accumulated meanwhile fire on the next loop
            // iteration, before the idle wait.
            while let Ok((len, src)) = sock.try_recv_from(&mut buf) {
                if let Some(from) = book.resolve(src) {
                    // Digest before dispatch: the flight recorder shows
                    // the packet even if the handler panics on it.
                    metrics.record_packet(start.elapsed().as_nanos() as u64, from, me, &buf[..len]);
                    node.on_message(from, &buf[..len], &mut ctx);
                    drain_effects(
                        &mut ctx,
                        &mut timers,
                        &mut delayed,
                        &mut cancelled,
                        &mut out,
                        &mut timer_seq,
                    );
                    events += 1;
                }
            }

            // Batch phase 3: collect asynchronous verification
            // completions. The node's reorder buffer re-injects them in
            // dispatch order, so this stage matches the simulator's
            // inline ordering tie-break (verify results apply exactly
            // where the inline call would have applied them, after the
            // timers and packets of the batch that dispatched them).
            if verify_pool.is_some() {
                let collected = node.on_async(&mut ctx);
                if collected > 0 {
                    drain_effects(
                        &mut ctx,
                        &mut timers,
                        &mut delayed,
                        &mut cancelled,
                        &mut out,
                        &mut timer_seq,
                    );
                    events += collected;
                }
            }

            // Durability point: make the batch's WAL appends durable
            // *before* releasing its sends, so no acknowledgment ever
            // outruns the write-ahead log (one batched fsync covers
            // every event of the batch). Wall-clock cost lands in the
            // `store.fsync_ns` histogram — the recovery drill reads it.
            if let Some(store) = node.store() {
                if store.dirty() {
                    let t0 = Instant::now();
                    let bytes = store.flush();
                    metrics.observe("store.fsync_ns", t0.elapsed().as_nanos() as u64);
                    metrics.add("store.flushed_bytes", bytes);
                    metrics.incr("store.flushes");
                }
            }

            // Flush the batch's coalesced sends in one pass, preserving
            // the order events produced them.
            for (to, payload) in out.drain(..) {
                let err = match book.lookup(to) {
                    Some(dst) => sock.send_to(&payload, dst).await.err(),
                    None => Some(std::io::Error::other("destination not in address book")),
                };
                if let Some(e) = err {
                    // Global total plus a per-destination label: one
                    // unreachable peer is attributable from the
                    // counters, not just the first-failure log line.
                    // Labels are cardinality-bounded — after
                    // SEND_FAIL_LABEL_CAP distinct destinations, further
                    // ones share the `other` bucket.
                    metrics.incr("runtime_send_failed");
                    if fail_labeled.contains(&to) || fail_labeled.len() < SEND_FAIL_LABEL_CAP {
                        fail_labeled.insert(to);
                        metrics.incr(&format!("runtime.send_failed.{to}"));
                    } else {
                        metrics.incr("runtime.send_failed.other");
                    }
                    if fail_logged.insert(to) {
                        eprintln!(
                            "node {me}: send to {to} failed: {e} \
                             (further failures to this destination are counted, not logged)"
                        );
                    }
                }
            }

            // Telemetry: refresh the published health document at a
            // coarse cadence (before the busy-path `continue`, so a
            // saturated node still reports).
            if last_health.is_none_or(|t| t.elapsed() >= HEALTH_REFRESH) {
                last_health = Some(Instant::now());
                publish_health(
                    node.as_ref(),
                    me,
                    &metrics,
                    verify_pool.as_ref(),
                    poisoned.load(Ordering::SeqCst),
                    &health,
                );
            }

            if events > 0 {
                metrics.observe("runtime.batch_events", events);
                continue;
            }

            // Idle: wait for a packet, the next deadline, or a stop poll.
            let now_ns = start.elapsed().as_nanos() as u64;
            let next_deadline = [
                timers.peek().map(|Reverse((d, ..))| *d),
                delayed.peek().map(|Reverse((d, ..))| *d),
            ]
            .into_iter()
            .flatten()
            .min();
            let wait = next_deadline
                .map(|d| Duration::from_nanos(d.saturating_sub(now_ns)))
                .unwrap_or(Duration::from_millis(50))
                .min(Duration::from_millis(50));
            tokio::select! {
                _ = sock.readable() => {}
                _ = verify_wake.notified(), if verify_pool.is_some() => {}
                _ = tokio::time::sleep(wait) => {}
            }
        }
        // Final publication: a scrape after shutdown sees the node's
        // last state, not a 200ms-stale one.
        publish_health(
            node.as_ref(),
            me,
            &metrics,
            verify_pool.as_ref(),
            poisoned.load(Ordering::SeqCst),
            &health,
        );
        node
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[test]
    fn address_book_localhost_layout() {
        let book = AddressBook::localhost(4, 2, GroupId(0), 47000);
        assert_eq!(
            book.lookup(Addr::Replica(ReplicaId(0))),
            Some(SocketAddr::from(([127, 0, 0, 1], 47000)))
        );
        assert_eq!(
            book.lookup(Addr::Client(ClientId(1))),
            Some(SocketAddr::from(([127, 0, 0, 1], 47005)))
        );
        // Multicast resolves to the sequencer socket.
        assert_eq!(
            book.lookup(Addr::Multicast(GroupId(0))),
            book.lookup(Addr::Sequencer(GroupId(0)))
        );
        // Reverse resolution names the sequencer (registered first).
        let seq_sock = book.lookup(Addr::Sequencer(GroupId(0))).unwrap();
        assert_eq!(book.resolve(seq_sock), Some(Addr::Sequencer(GroupId(0))));
    }

    #[test]
    fn builder_matches_localhost_layout() {
        let dep = AddressBook::builder()
            .replicas(4)
            .clients(2)
            .group(GroupId(0))
            .base_port(47100)
            .build()
            .unwrap();
        assert_eq!(dep.replicas(), 4);
        assert_eq!(dep.clients(), 2);
        assert_eq!(
            dep.replica_ids(),
            vec![ReplicaId(0), ReplicaId(1), ReplicaId(2), ReplicaId(3)]
        );
        assert_eq!(dep.replica(0), Addr::Replica(ReplicaId(0)));
        assert_eq!(dep.client(1), Addr::Client(ClientId(1)));
        assert_eq!(dep.sequencer(), Addr::Sequencer(GroupId(0)));
        let legacy = AddressBook::localhost(4, 2, GroupId(0), 47100);
        for addr in [
            dep.replica(0),
            dep.replica(3),
            dep.client(0),
            dep.client(1),
            dep.sequencer(),
            dep.config_service(),
            Addr::Multicast(GroupId(0)),
        ] {
            assert_eq!(dep.book().lookup(addr), legacy.lookup(addr), "{addr}");
        }
    }

    #[test]
    fn builder_rejects_exhausted_port_space() {
        let err = AddressBook::builder()
            .replicas(10)
            .clients(10)
            .base_port(u16::MAX - 3)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::PortSpace { needed: 22, .. }),
            "{err}"
        );
    }

    #[test]
    fn spawn_of_unregistered_address_fails() {
        struct Nop;
        impl Node for Nop {
            fn on_message(&mut self, _: Addr, _: &[u8], _: &mut dyn Context) {}
            fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let err = try_spawn_node(Box::new(Nop), Addr::Config, AddressBook::new()).unwrap_err();
        assert!(
            matches!(err, RuntimeError::UnknownAddress(Addr::Config)),
            "{err}"
        );
    }
}
