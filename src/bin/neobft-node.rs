//! `neobft-node` — run NeoBFT nodes over real UDP sockets.
//!
//! Each role runs as its own process (or use `all` to launch a whole
//! deployment in one process for local evaluation):
//!
//! ```bash
//! # terminal 1..4: replicas
//! neobft-node replica 0 --n 4 --clients 2 --base-port 47000
//! neobft-node replica 1 --n 4 --clients 2 --base-port 47000
//! neobft-node replica 2 --n 4 --clients 2 --base-port 47000
//! neobft-node replica 3 --n 4 --clients 2 --base-port 47000
//! # terminal 5: sequencer + config service
//! neobft-node sequencer --n 4 --clients 2 --base-port 47000
//! # terminal 6: a client
//! neobft-node client 0 --n 4 --clients 2 --base-port 47000 --ops 1000
//!
//! # or everything at once:
//! neobft-node all --n 4 --clients 2 --ops 1000 --app kv
//! ```
//!
//! All processes must agree on `--n`, `--clients`, `--seed`, and
//! `--base-port` (the address book and key material derive from them —
//! a stand-in for the configuration service's deployment manifest).

use neobft::aom::{AuthMode, ConfigService, ReceiverAuth, SequencerHw, SequencerNode};
use neobft::app::{App, EchoApp, EchoWorkload, KvApp, Workload, YcsbConfig, YcsbGenerator};
use neobft::core::{Client, NeoConfig, Replica};
use neobft::crypto::{CostModel, SystemKeys};
use neobft::runtime::{
    try_spawn_node_with_obs, AddressBook, NodeHandle, ObsExporter, RuntimeTelemetry,
};
use neobft::sim::obs::{FlightDump, ObsConfig};
use neobft::sim::TelemetryServer;
use neobft::wire::{Addr, ClientId, GroupId, ReplicaId};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::Duration;

#[derive(Clone, Debug)]
struct Opts {
    n: usize,
    clients: usize,
    base_port: u16,
    seed: u64,
    ops: u64,
    auth: ReceiverAuth,
    app: AppChoice,
    run_secs: u64,
    obs_out: Option<PathBuf>,
    telemetry_addr: Option<String>,
}

#[derive(Clone, Copy, Debug)]
enum AppChoice {
    Echo,
    Kv,
}

const GROUP: GroupId = GroupId(0);

fn usage() -> ! {
    eprintln!(
        "usage: neobft-node <replica ID | sequencer | client ID | all> [options]\n\
         options:\n\
           --n N            replicas (default 4; must be 3f+1)\n\
           --clients N      clients in the deployment (default 1)\n\
           --base-port P    first UDP port (default 47000)\n\
           --seed S         deployment key seed (default 2024)\n\
           --ops N          operations per client (default 100)\n\
           --auth hm|pk     aom authenticator (default hm)\n\
           --app echo|kv    application (default echo)\n\
           --run-secs S     how long to keep serving (default 30)\n\
           --obs-out PATH   stream live per-node metrics JSONL to PATH\n\
           --telemetry-addr A\n\
                            serve GET /metrics (Prometheus) and /health\n\
                            (JSON) on A, e.g. 127.0.0.1:9464\n\
         SIGINT dumps the flight recorder to $NEO_FLIGHT_DIR (default\n\
         target/flight) before exiting."
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> (String, Option<u64>, Opts) {
    if args.is_empty() {
        usage();
    }
    let role = args[0].clone();
    let mut idx = 1;
    let id = if matches!(role.as_str(), "replica" | "client") {
        let id = args
            .get(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage());
        idx = 2;
        Some(id)
    } else {
        None
    };
    let mut opts = Opts {
        n: 4,
        clients: 1,
        base_port: 47000,
        seed: 2024,
        ops: 100,
        auth: ReceiverAuth::Hmac,
        app: AppChoice::Echo,
        run_secs: 30,
        obs_out: None,
        telemetry_addr: None,
    };
    let mut i = idx;
    while i < args.len() {
        let val = || args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--n" => opts.n = val().parse().unwrap_or_else(|_| usage()),
            "--clients" => opts.clients = val().parse().unwrap_or_else(|_| usage()),
            "--base-port" => opts.base_port = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => opts.ops = val().parse().unwrap_or_else(|_| usage()),
            "--run-secs" => opts.run_secs = val().parse().unwrap_or_else(|_| usage()),
            "--obs-out" => opts.obs_out = Some(PathBuf::from(val())),
            "--telemetry-addr" => opts.telemetry_addr = Some(val()),
            "--auth" => {
                opts.auth = match val().as_str() {
                    "hm" => ReceiverAuth::Hmac,
                    "pk" => ReceiverAuth::PublicKey,
                    _ => usage(),
                }
            }
            "--app" => {
                opts.app = match val().as_str() {
                    "echo" => AppChoice::Echo,
                    "kv" => AppChoice::Kv,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
        i += 2;
    }
    if !(opts.n - 1).is_multiple_of(3) {
        eprintln!("--n must be 3f+1");
        std::process::exit(2);
    }
    (role, id, opts)
}

fn build_app(choice: AppChoice) -> Box<dyn App> {
    match choice {
        AppChoice::Echo => Box::new(EchoApp::new()),
        AppChoice::Kv => Box::new(KvApp::loaded(10_000, 128)),
    }
}

fn build_workload(choice: AppChoice, salt: u64) -> Box<dyn Workload> {
    match choice {
        AppChoice::Echo => Box::new(EchoWorkload::new(64, salt)),
        AppChoice::Kv => Box::new(YcsbGenerator::new(
            YcsbConfig {
                record_count: 10_000,
                ..YcsbConfig::WORKLOAD_A
            },
            salt,
        )),
    }
}

fn neo_config(opts: &Opts) -> NeoConfig {
    let f = (opts.n - 1) / 3;
    let mut cfg = NeoConfig::new(f);
    cfg.auth = opts.auth.clone();
    cfg
}

fn spawn_replica(id: u32, opts: &Opts, book: &AddressBook, keys: &SystemKeys) -> NodeHandle {
    let replica = Replica::new(
        ReplicaId(id),
        neo_config(opts),
        keys,
        CostModel::FREE,
        build_app(opts.app),
    );
    println!(
        "replica {id} listening on {:?}",
        book.lookup(Addr::Replica(ReplicaId(id)))
    );
    try_spawn_node_with_obs(
        Box::new(replica),
        Addr::Replica(ReplicaId(id)),
        book.clone(),
        ObsConfig::flight_recorder(),
    )
    .expect("replica spawns")
}

fn spawn_sequencer(opts: &Opts, book: &AddressBook, keys: &SystemKeys) -> (NodeHandle, NodeHandle) {
    let mut config = ConfigService::new();
    config.register_group(
        GROUP,
        (0..opts.n as u32).map(ReplicaId).collect(),
        (opts.n - 1) / 3,
    );
    let config_h = try_spawn_node_with_obs(
        Box::new(config),
        Addr::Config,
        book.clone(),
        ObsConfig::flight_recorder(),
    )
    .expect("config service spawns");
    let mode = match opts.auth {
        ReceiverAuth::Hmac => AuthMode::HmacVector,
        ReceiverAuth::PublicKey => AuthMode::PublicKey,
    };
    let sequencer = SequencerNode::new(
        GROUP,
        (0..opts.n as u32).map(ReplicaId).collect(),
        mode,
        SequencerHw::Software(CostModel::FREE),
        keys,
    );
    println!(
        "sequencer listening on {:?} (group address)",
        book.lookup(Addr::Sequencer(GROUP))
    );
    let seq_h = try_spawn_node_with_obs(
        Box::new(sequencer),
        Addr::Sequencer(GROUP),
        book.clone(),
        ObsConfig::flight_recorder(),
    )
    .expect("sequencer spawns");
    (config_h, seq_h)
}

fn spawn_client(id: u64, opts: &Opts, book: &AddressBook, keys: &SystemKeys) -> NodeHandle {
    let mut client = Client::new(
        ClientId(id),
        neo_config(opts),
        keys,
        CostModel::FREE,
        build_workload(opts.app, id + 1),
    );
    client.max_ops = Some(opts.ops);
    println!("client {id} issuing {} ops", opts.ops);
    try_spawn_node_with_obs(
        Box::new(client),
        Addr::Client(ClientId(id)),
        book.clone(),
        ObsConfig::flight_recorder(),
    )
    .expect("client spawns")
}

/// Watch for the first SIGINT on a side thread; the main thread observes
/// it through the returned channel (`recv_timeout` doubles as the serve
/// sleep). A second SIGINT terminates the process immediately.
fn arm_sigint() -> mpsc::Receiver<()> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let rt = match tokio::runtime::Builder::new_current_thread()
            .enable_all()
            .build()
        {
            Ok(rt) => rt,
            Err(_) => return, // ctrl-C keeps its default meaning
        };
        rt.block_on(async {
            if tokio::signal::ctrl_c().await.is_ok() {
                eprintln!("neobft-node: interrupt — dumping flight recorder");
                let _ = tx.send(());
            }
            if tokio::signal::ctrl_c().await.is_ok() {
                std::process::exit(130);
            }
        });
    });
    rx
}

/// Serve for `secs`, or less if SIGINT arrives. Returns true on
/// interrupt.
fn serve(rx: &mpsc::Receiver<()>, secs: u64) -> bool {
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => true,
        Err(mpsc::RecvTimeoutError::Timeout) => false,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The watcher could not start; fall back to a plain sleep.
            std::thread::sleep(Duration::from_secs(secs));
            false
        }
    }
}

/// Freeze every handle's flight-recorder rings into one JSON artifact
/// under `$NEO_FLIGHT_DIR` (default `target/flight`).
fn write_flight(handles: &[&NodeHandle], reason: &str) {
    let dir = std::env::var_os("NEO_FLIGHT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/flight"));
    let at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut context = std::collections::BTreeMap::new();
    context.insert("source".to_string(), "neobft-node".to_string());
    let dump = FlightDump {
        reason: reason.to_string(),
        at,
        violations: Vec::new(),
        context,
        nodes: handles.iter().map(|h| h.flight()).collect(),
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("neobft-node: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("flight-node-{}.json", std::process::id()));
    match serde_json::to_vec_pretty(&dump) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("neobft-node: flight recorder written to {}", path.display()),
            Err(e) => eprintln!("neobft-node: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("neobft-node: cannot serialize flight dump: {e}"),
    }
}

/// Start the live exporter over `handles` if `--obs-out` was given.
fn start_exporter(opts: &Opts, handles: &[&NodeHandle]) -> Option<ObsExporter> {
    let path = opts.obs_out.as_deref()?;
    match ObsExporter::start(
        handles.iter().map(|h| h.obs_source()).collect(),
        path,
        Duration::from_millis(250),
    ) {
        Ok(e) => Some(e),
        Err(e) => {
            eprintln!("neobft-node: cannot open --obs-out {}: {e}", path.display());
            None
        }
    }
}

/// Serve the scrape endpoint over `handles` if `--telemetry-addr` was
/// given.
fn start_telemetry(opts: &Opts, handles: &[&NodeHandle]) -> Option<TelemetryServer> {
    let addr = opts.telemetry_addr.as_deref()?;
    let provider = Arc::new(RuntimeTelemetry::from_handles(handles.iter().copied()));
    match TelemetryServer::start(addr, provider) {
        Ok(server) => {
            println!(
                "telemetry on http://{}/metrics and /health",
                server.local_addr()
            );
            Some(server)
        }
        Err(e) => {
            eprintln!("neobft-node: cannot bind --telemetry-addr {addr}: {e}");
            None
        }
    }
}

fn report_client(node: Box<dyn neobft::sim::Node>) {
    let client = node.as_any().downcast_ref::<Client>().expect("client node");
    let done = client.completed.len();
    println!("client {}: committed {done} ops", client.id());
    if done > 0 {
        let mut lats: Vec<u64> = client.completed.iter().map(|o| o.latency_ns()).collect();
        lats.sort_unstable();
        println!(
            "  p50 {:.0}µs  p99 {:.0}µs  retries {}",
            lats[done / 2] as f64 / 1e3,
            lats[(done * 99 / 100).min(done - 1)] as f64 / 1e3,
            client.completed.iter().map(|o| o.retries).sum::<u32>()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (role, id, opts) = parse(&args);
    let keys = SystemKeys::new(opts.seed, opts.n, opts.clients);
    let book = AddressBook::localhost(opts.n, opts.clients, GROUP, opts.base_port);

    let sigint = arm_sigint();
    match role.as_str() {
        "replica" => {
            let h = spawn_replica(id.unwrap() as u32, &opts, &book, &keys);
            let exporter = start_exporter(&opts, &[&h]);
            let telemetry = start_telemetry(&opts, &[&h]);
            if serve(&sigint, opts.run_secs) {
                write_flight(&[&h], "sigint");
            }
            if let Some(e) = exporter {
                e.stop();
            }
            if let Some(t) = telemetry {
                t.stop();
            }
            let node = h.try_shutdown().expect("node joins");
            let replica = node.as_any().downcast_ref::<Replica>().expect("replica");
            println!(
                "replica {}: executed {}, log {}, view {}",
                replica.id(),
                replica.stats.executed,
                replica.log_len(),
                replica.view()
            );
        }
        "sequencer" => {
            let (config_h, seq_h) = spawn_sequencer(&opts, &book, &keys);
            let exporter = start_exporter(&opts, &[&config_h, &seq_h]);
            let telemetry = start_telemetry(&opts, &[&config_h, &seq_h]);
            if serve(&sigint, opts.run_secs) {
                write_flight(&[&config_h, &seq_h], "sigint");
            }
            if let Some(e) = exporter {
                e.stop();
            }
            if let Some(t) = telemetry {
                t.stop();
            }
            seq_h.try_shutdown().expect("sequencer joins");
            config_h.try_shutdown().expect("config service joins");
        }
        "client" => {
            let h = spawn_client(id.unwrap(), &opts, &book, &keys);
            let exporter = start_exporter(&opts, &[&h]);
            let telemetry = start_telemetry(&opts, &[&h]);
            if serve(&sigint, opts.run_secs.min(opts.ops / 100 + 10)) {
                write_flight(&[&h], "sigint");
            }
            if let Some(e) = exporter {
                e.stop();
            }
            if let Some(t) = telemetry {
                t.stop();
            }
            report_client(h.try_shutdown().expect("client joins"));
        }
        "all" => {
            let (config_h, seq_h) = spawn_sequencer(&opts, &book, &keys);
            let replica_hs: Vec<_> = (0..opts.n as u32)
                .map(|r| spawn_replica(r, &opts, &book, &keys))
                .collect();
            let client_hs: Vec<_> = (0..opts.clients as u64)
                .map(|c| spawn_client(c, &opts, &book, &keys))
                .collect();
            let handles: Vec<&NodeHandle> = std::iter::once(&config_h)
                .chain(std::iter::once(&seq_h))
                .chain(replica_hs.iter())
                .chain(client_hs.iter())
                .collect();
            let exporter = start_exporter(&opts, &handles);
            let telemetry = start_telemetry(&opts, &handles);
            if serve(&sigint, (opts.ops / 1000 + 3).min(opts.run_secs)) {
                write_flight(&handles, "sigint");
            }
            drop(handles);
            if let Some(e) = exporter {
                e.stop();
            }
            if let Some(t) = telemetry {
                t.stop();
            }
            for h in client_hs {
                report_client(h.try_shutdown().expect("client joins"));
            }
            for h in replica_hs {
                let node = h.try_shutdown().expect("node joins");
                let replica = node.as_any().downcast_ref::<Replica>().expect("replica");
                println!(
                    "replica {}: executed {}, log {}",
                    replica.id(),
                    replica.stats.executed,
                    replica.log_len()
                );
            }
            seq_h.try_shutdown().expect("sequencer joins");
            config_h.try_shutdown().expect("config service joins");
        }
        _ => usage(),
    }
}
