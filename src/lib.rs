//! # neobft
//!
//! A full reproduction of **"NeoBFT: Accelerating Byzantine Fault
//! Tolerance Using Authenticated In-Network Ordering"** (SIGCOMM 2023):
//! the aom authenticated ordered multicast primitive, the NeoBFT
//! protocol, the comparison baselines (PBFT, Zyzzyva, HotStuff, MinBFT),
//! switch/FPGA hardware models, a deterministic network simulator, and a
//! real tokio/UDP transport.
//!
//! This façade crate re-exports the workspace crates under stable paths
//! and hosts the runnable examples:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example kv_store
//! cargo run --release --example trading_gateway
//! cargo run --release --example fault_drill
//! ```
//!
//! ## Crate map
//!
//! | Module | Source crate | Contents |
//! |---|---|---|
//! | [`wire`] | `neo-wire` | identifiers, aom header, framing |
//! | [`crypto`] | `neo-crypto` | digests, MACs, Ed25519/secp256k1, cost meter |
//! | [`sim`] | `neo-sim` | deterministic discrete-event simulator |
//! | [`switch`] | `neo-switch` | Tofino + FPGA models, resource tables |
//! | [`aom`] | `neo-aom` | sequencer, receiver library, config service |
//! | [`core`] | `neo-core` | the NeoBFT replica and client |
//! | [`baselines`] | `neo-baselines` | PBFT, Zyzzyva, HotStuff, MinBFT |
//! | [`app`] | `neo-app` | echo/KV applications, YCSB workloads |
//! | [`store`] | `neo-store` | durable WAL + checkpoint backends (file, mem) |
//! | [`bench`] | `neo-bench` | the experiment harness behind every figure |
//! | [`runtime`] | this crate | tokio/UDP transport for real deployments |

pub use neo_aom as aom;
pub use neo_app as app;
pub use neo_baselines as baselines;
pub use neo_bench as bench;
pub use neo_core as core;
pub use neo_crypto as crypto;
pub use neo_sim as sim;
pub use neo_store as store;
pub use neo_switch as switch;
pub use neo_wire as wire;

pub mod runtime;
